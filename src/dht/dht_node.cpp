#include "dht/dht_node.h"

#include <algorithm>

#include "transport/sim_transport.h"

namespace ipfs::dht {

DhtNode::DhtNode(transport::Transport& transport, multiformats::PeerId id,
                 std::vector<multiformats::Multiaddr> addresses,
                 RecordStore* shared_store)
    : transport_(transport),
      self_{std::move(id), transport.local(), std::move(addresses)},
      routing_table_(Key::for_peer(self_.id)),
      records_(shared_store != nullptr ? shared_store : &own_records_) {
  schedule_expiry_sweep();
}

DhtNode::DhtNode(std::unique_ptr<transport::Transport> transport,
                 multiformats::PeerId id,
                 std::vector<multiformats::Multiaddr> addresses,
                 RecordStore* shared_store)
    : DhtNode(*transport, std::move(id), std::move(addresses), shared_store) {
  owned_transport_ = std::move(transport);
}

DhtNode::DhtNode(sim::Network& network, sim::NodeId node,
                 multiformats::PeerId id,
                 std::vector<multiformats::Multiaddr> addresses,
                 RecordStore* shared_store)
    : DhtNode(std::make_unique<transport::SimTransport>(network, node),
              std::move(id), std::move(addresses), shared_store) {}

DhtNode::~DhtNode() {
  republish_timer_.cancel();
  expiry_timer_.cancel();
}

void DhtNode::attach_to_network() {
  transport_.set_request_handler(
      [this](sim::NodeId from, const sim::MessagePtr& message, auto respond) {
        handle_request(from, message, respond);
      });
  transport_.set_message_handler(
      [this](sim::NodeId from, const sim::MessagePtr& message) {
        handle_message(from, message);
      });
}

void DhtNode::force_mode(Mode mode) { mode_ = mode; }

void DhtNode::fix_mode(Mode mode) {
  mode_ = mode;
  fixed_mode_ = mode;
}

void DhtNode::set_bucket_diversity_cap(std::size_t cap) {
  bucket_diversity_cap_ = cap;
  // Rebuild the live table under the new cap. Existing entries re-enter
  // in insertion order, so entries over a newly lowered cap are shed.
  RoutingTable capped(Key::for_peer(self_.id), cap);
  for (const auto& peer : routing_table_.all_peers()) capped.upsert(peer);
  routing_table_ = std::move(capped);
}

void DhtNode::answer_closer_peers(const Key& target,
                                  std::vector<PeerRef>& out) const {
  out = routing_table_.closest(target, kReplication);
}

bool DhtNode::handle_request(
    sim::NodeId from, const sim::MessagePtr& message,
    const std::function<void(sim::MessagePtr, std::size_t)>& respond) {
  // Dispatch on the registered message kind (sim/message_kind.h) instead
  // of a dynamic_cast chain: one virtual call per request, which matters
  // on million-peer worlds where DHT serving dominates the event loop.
  const sim::MessageKind kind = message->kind();

  // Clients do not serve DHT requests.
  if (mode_ != Mode::kServer) {
    switch (kind) {
      case sim::MessageKind::kDialBackRequest: {
        // DialBack must still be answered so AutoNAT works for others —
        // but a client cannot help with dial-backs; report unreachable.
        auto response = std::make_shared<DialBackResponse>();
        response->reachable = false;
        respond(std::move(response), kRequestBaseBytes);
        return true;
      }
      case sim::MessageKind::kFindNodeRequest:
      case sim::MessageKind::kGetProvidersRequest:
      case sim::MessageKind::kGetValueRequest:
      case sim::MessageKind::kAddProviderRequest:
      case sim::MessageKind::kPutValueRequest:
      case sim::MessageKind::kListBucketsRequest:
        // Politely ignored (the requester times out and moves on).
        return true;
      default:
        return false;
    }
  }

  // Learn about server-mode requesters (the identify-protocol side
  // effect that makes freshly joined servers routable). Exactly the
  // lookup RPCs carry the LookupRequestBase header.
  if (kind == sim::MessageKind::kFindNodeRequest ||
      kind == sim::MessageKind::kGetProvidersRequest ||
      kind == sim::MessageKind::kGetValueRequest) {
    const auto* lookup_request =
        static_cast<const LookupRequestBase*>(message.get());
    if (lookup_request->requester_is_server &&
        !lookup_request->requester.id.empty() &&
        lookup_request->requester.node != sim::kInvalidNode) {
      routing_table_.upsert(lookup_request->requester);
    }
  }

  switch (kind) {
    case sim::MessageKind::kFindNodeRequest: {
      const auto* find_node =
          static_cast<const FindNodeRequest*>(message.get());
      auto response = std::make_shared<FindNodeResponse>();
      answer_closer_peers(find_node->target, response->closer);
      const std::size_t size = response_size_for(response->closer.size());
      respond(std::move(response), size);
      break;
    }
    case sim::MessageKind::kGetProvidersRequest: {
      const auto* get_providers =
          static_cast<const GetProvidersRequest*>(message.get());
      auto response = std::make_shared<GetProvidersResponse>();
      response->providers = records_->providers(
          get_providers->key, transport_.now());
      // Providers come back with their Multiaddress only when this peer
      // still tracks them in its routing table; otherwise the requester
      // has to resolve the PeerID with a second DHT walk (Section 3.2).
      for (auto& record : response->providers) {
        if (!routing_table_.contains(record.provider.id)) {
          record.provider.node = sim::kInvalidNode;
          record.provider.addresses.clear();
        }
      }
      answer_closer_peers(get_providers->key, response->closer);
      const std::size_t size = response_size_for(
          response->closer.size() + response->providers.size());
      respond(std::move(response), size);
      break;
    }
    case sim::MessageKind::kAddProviderRequest: {
      const auto* add_provider =
          static_cast<const AddProviderRequest*>(message.get());
      ProviderRecord record{add_provider->provider, transport_.now()};
      records_->add_provider(add_provider->key, std::move(record));
      transport_.metrics().counter("dht.provider_records_stored").inc();
      // No response needed: the publisher fires and forgets (Section 3.1).
      break;
    }
    case sim::MessageKind::kPutValueRequest: {
      const auto* put_value =
          static_cast<const PutValueRequest*>(message.get());
      ValueRecord record = put_value->record;
      record.received_at = transport_.now();
      records_->put_value(put_value->key, std::move(record));
      respond(std::make_shared<GetValueResponse>(), kRequestBaseBytes);
      break;
    }
    case sim::MessageKind::kGetValueRequest: {
      const auto* get_value =
          static_cast<const GetValueRequest*>(message.get());
      auto response = std::make_shared<GetValueResponse>();
      response->record = records_->get_value(get_value->key);
      answer_closer_peers(get_value->key, response->closer);
      const std::size_t payload =
          response->record ? response->record->value.size() : 0;
      const std::size_t size =
          response_size_for(response->closer.size(), payload);
      respond(std::move(response), size);
      break;
    }
    case sim::MessageKind::kListBucketsRequest: {
      auto response = std::make_shared<ListBucketsResponse>();
      response->peers = routing_table_.all_peers();
      respond(std::move(response), response_size_for(response->peers.size()));
      break;
    }
    case sim::MessageKind::kDialBackRequest: {
      // AutoNAT: try to dial the requester back on a fresh connection.
      const bool already_connected = transport_.connected(from);
      if (already_connected) {
        // The inbound connection proves nothing about reachability; a
        // real implementation dials a fresh address. Approximate with a
        // dial attempt that honours the requester's dialability.
        auto response = std::make_shared<DialBackResponse>();
        response->reachable = transport_.peer_dialable(from);
        respond(std::move(response), kRequestBaseBytes);
      } else {
        transport_.connect(
            from, [this, from, respond](bool ok, sim::Duration) {
              auto response = std::make_shared<DialBackResponse>();
              response->reachable = ok;
              respond(std::move(response), kRequestBaseBytes);
              if (ok) transport_.disconnect(from);
            });
      }
      break;
    }
    default:
      return false;
  }

  return true;
}

bool DhtNode::handle_message(sim::NodeId from, const sim::MessagePtr& message) {
  // ADD_PROVIDER also arrives as a fire-and-forget datagram.
  if (message->kind() == sim::MessageKind::kAddProviderRequest) {
    const auto* add_provider =
        static_cast<const AddProviderRequest*>(message.get());
    if (mode_ == Mode::kServer) {
      ProviderRecord record{add_provider->provider,
                            transport_.now()};
      records_->add_provider(add_provider->key, std::move(record));
      transport_.metrics().counter("dht.provider_records_stored").inc();
    }
    (void)from;
    return true;
  }
  return false;
}

LookupHost DhtNode::make_lookup_host() {
  LookupHost host;
  host.transport = &transport_;
  host.self_ref = self_;
  host.server_mode = mode_ == Mode::kServer;
  host.provider_quorum = provider_quorum_;
  host.on_peer_responded = [this](const PeerRef& peer) {
    routing_table_.upsert(peer);
  };
  host.on_peer_failed = [this](const PeerRef& peer) {
    // Evict unresponsive peers so the table self-heals under churn.
    routing_table_.remove(peer.id);
  };
  return host;
}

const Lookup* DhtNode::start_lookup(
    LookupType type, const Key& target, std::vector<PeerRef> seeds,
    Lookup::Callback cb, std::optional<multiformats::PeerId> target_peer,
    metrics::SpanId parent_span) {
  auto wrapped = [this, cb = std::move(cb)](LookupResult result) {
    cb(std::move(result));
  };
  LookupHost host = make_lookup_host();
  host.parent_span = parent_span;
  auto lookup = Lookup::start(std::move(host), type, target,
                              std::move(seeds), std::move(wrapped),
                              std::move(target_peer));
  // Keep it alive until its callback has fired. The cleanup daemon
  // verifies it is erasing the lookup it was scheduled for: after a
  // cancel_lookup() the allocator may reuse the address for a younger
  // walk, and blindly erasing by pointer would drop that walk's only
  // keep-alive mid-flight (its completion callback would never fire).
  active_lookups_[lookup.get()] = lookup;
  transport_.schedule_daemon_after(
      kLookupDeadline + sim::seconds(1),
      [this, raw = lookup.get(), weak = std::weak_ptr<Lookup>(lookup)] {
        const auto it = active_lookups_.find(raw);
        if (it != active_lookups_.end() && it->second == weak.lock())
          active_lookups_.erase(it);
      });
  return lookup.get();
}

void DhtNode::cancel_lookup(const Lookup* handle) {
  const auto it = active_lookups_.find(handle);
  if (it == active_lookups_.end()) return;
  it->second->abort();
  // The daemon cleanup scheduled at start_lookup finds nothing: erasing
  // a missing key is harmless.
  active_lookups_.erase(it);
}

void DhtNode::run_autonat(std::vector<PeerRef> probes,
                          std::function<void()> done) {
  if (probes.size() > static_cast<std::size_t>(kAutonatProbes))
    probes.resize(kAutonatProbes);
  auto state = std::make_shared<std::pair<int, int>>(0, 0);  // done, reachable
  const int total = static_cast<int>(probes.size());
  if (total == 0) {
    done();
    return;
  }
  auto finish_one = [this, state, total, done](bool reachable) {
    ++state->first;
    if (reachable) ++state->second;
    if (state->first == total) {
      mode_ = fixed_mode_.value_or(
          state->second > kAutonatThreshold ? Mode::kServer : Mode::kClient);
      done();
    }
  };
  for (const auto& probe : probes) {
    transport_.request(
        probe.node, std::make_shared<DialBackRequest>(), kRequestBaseBytes,
        kRpcTimeout,
        [finish_one](sim::RpcStatus status, const sim::MessagePtr& message) {
          if (status != sim::RpcStatus::kOk) {
            finish_one(false);
            return;
          }
          const auto* response =
              dynamic_cast<const DialBackResponse*>(message.get());
          finish_one(response != nullptr && response->reachable);
        });
  }
}

void DhtNode::bootstrap(std::vector<PeerRef> seeds,
                        std::function<void(bool)> done) {
  auto state = std::make_shared<std::pair<int, std::vector<PeerRef>>>();
  const int total = static_cast<int>(seeds.size());
  if (total == 0) {
    done(false);
    return;
  }

  auto after_connections = [this, done = std::move(done)](
                               std::vector<PeerRef> connected) {
    if (connected.empty()) {
      done(false);
      return;
    }
    for (const auto& peer : connected) routing_table_.upsert(peer);
    run_autonat(connected, [this, connected, done] {
      // Self-lookup to populate the routing table (standard Kademlia join).
      start_lookup(LookupType::kFindNode, routing_table_.local_key(),
                   connected, [done](LookupResult result) {
                     done(!result.closest.empty());
                   });
    });
  };

  for (const auto& seed : seeds) {
    transport_.connect(
        seed.node,
        [state, total, seed, after_connections](bool ok, sim::Duration) {
          if (ok) state->second.push_back(seed);
          if (++state->first == total) after_connections(state->second);
        });
  }
}

void DhtNode::handle_crash() {
  for (auto& [raw, lookup] : active_lookups_) lookup->abort();
  active_lookups_.clear();
  routing_table_ =
      RoutingTable(Key::for_peer(self_.id), bucket_diversity_cap_);
  republish_timer_.cancel();
  expiry_timer_.cancel();
}

void DhtNode::handle_restart() {
  republish_timer_.cancel();
  expiry_timer_.cancel();
  records_->expire_providers(transport_.now());
  schedule_expiry_sweep();
  if (!reprovide_keys_.empty()) schedule_republish();
}

void DhtNode::store_provider_records(
    const Key& key, std::vector<PeerRef> targets,
    std::function<void(StoreBatchResult)> done) {
  const sim::Time start = transport_.now();
  auto result = std::make_shared<StoreBatchResult>();
  result->attempted = static_cast<int>(targets.size());
  if (targets.empty()) {
    done(*result);
    return;
  }

  // Fire-and-forget ADD_PROVIDER to each target. Dials run through a
  // bounded window (the libp2p dialer limits concurrent outbound dials),
  // so a slow target stalls the tail of the batch — the mechanism behind
  // Figure 9c's accumulation past the 5 s / 45 s timeouts. The batch is
  // complete when every dial has either delivered the record or given up.
  struct BatchState {
    std::vector<PeerRef> queue;
    std::size_t next = 0;
    int in_flight = 0;
  };
  constexpr int kDialWindow = 20;
  auto state = std::make_shared<BatchState>();
  state->queue = std::move(targets);

  auto pump = std::make_shared<std::function<void()>>();
  // The stored function must not capture its own shared_ptr (that cycle
  // would keep the batch state alive forever); the in-flight dial
  // callbacks hold the strong references instead, so the batch is freed
  // as soon as the last dial resolves — or is muted by a crash.
  std::weak_ptr<std::function<void()>> weak_pump = pump;
  *pump = [this, key, state, result, start, done, weak_pump] {
    if (state->next >= state->queue.size() && state->in_flight == 0) {
      result->elapsed = transport_.now() - start;
      done(*result);
      return;
    }
    while (state->next < state->queue.size() &&
           state->in_flight < kDialWindow) {
      const PeerRef peer = state->queue[state->next++];
      ++state->in_flight;
      transport_.connect(peer.node,
                         [this, key, peer, state, result,
                          pump = weak_pump.lock()](bool ok, sim::Duration) {
                         --state->in_flight;
                         if (ok) {
                           auto add = std::make_shared<AddProviderRequest>();
                           add->key = key;
                           add->provider = self_;
                           transport_.send(
                               peer.node, std::move(add),
                               kRequestBaseBytes + kPeerRefBytes);
                           ++result->sent;
                           transport_.metrics()
                               .counter("dht.add_provider_sent")
                               .inc();
                         }
                         (*pump)();
                       });
    }
  };
  (*pump)();
}

void DhtNode::provide(const Key& key, std::function<void(ProvideResult)> done) {
  const sim::Time start = transport_.now();
  const auto seeds = routing_table_.closest(key, kReplication);

  start_lookup(
      LookupType::kFindNode, key, seeds,
      [this, key, start, done = std::move(done)](LookupResult walk) {
        const sim::Time walk_end = transport_.now();
        auto result = std::make_shared<ProvideResult>();
        result->walk = walk_end - start;
        result->walk_result = walk;
        result->stores_attempted = static_cast<int>(walk.closest.size());

        if (walk.closest.empty()) {
          result->total = result->walk;
          done(*result);
          return;
        }

        store_provider_records(
            key, walk.closest, [result, done](StoreBatchResult batch) {
              result->rpc_batch = batch.elapsed;
              result->stores_sent = batch.sent;
              result->total = result->walk + result->rpc_batch;
              result->ok = batch.sent > 0;
              done(*result);
            });
      });
}

void DhtNode::start_reproviding(const Key& key) {
  reprovide_keys_.insert(key);
  if (!republish_timer_.active()) schedule_republish();
}

void DhtNode::stop_reproviding(const Key& key) { reprovide_keys_.erase(key); }

void DhtNode::schedule_republish() {
  republish_timer_ =
      transport_.schedule_daemon_after(kRepublishInterval, [this] {
        if (transport_.online()) {
          for (const auto& key : reprovide_keys_) {
            provide(key, [](ProvideResult) {});
            // Re-advertise through the hook (network indexers): indexer
            // state wiped by a crash is rebuilt on the republish cadence.
            if (republish_hook_) republish_hook_(key);
          }
        }
        schedule_republish();
      });
}

void DhtNode::schedule_expiry_sweep() {
  expiry_timer_ =
      transport_.schedule_daemon_after(kExpirySweepInterval, [this] {
        records_->expire_providers(transport_.now());
        schedule_expiry_sweep();
      });
}

void DhtNode::find_providers(const Key& key, Lookup::Callback done,
                             metrics::SpanId parent_span) {
  start_lookup(LookupType::kGetProviders, key,
               routing_table_.closest(key, kReplication), std::move(done),
               std::nullopt, parent_span);
}

const Lookup* DhtNode::find_providers_cancellable(
    const Key& key, Lookup::Callback done, metrics::SpanId parent_span) {
  return start_lookup(LookupType::kGetProviders, key,
                      routing_table_.closest(key, kReplication),
                      std::move(done), std::nullopt, parent_span);
}

void DhtNode::find_peer(
    const multiformats::PeerId& peer,
    std::function<void(std::optional<PeerRef>, LookupResult)> done,
    metrics::SpanId parent_span) {
  const Key target = Key::for_peer(peer);
  start_lookup(
      LookupType::kFindNode, target, routing_table_.closest(target, kReplication),
      [done = std::move(done)](LookupResult result) {
        auto target = result.target_peer;
        done(std::move(target), std::move(result));
      },
      peer, parent_span);
}

void DhtNode::lookup_closest(const Key& key, Lookup::Callback done,
                             metrics::SpanId parent_span) {
  start_lookup(LookupType::kFindNode, key,
               routing_table_.closest(key, kReplication), std::move(done),
               std::nullopt, parent_span);
}

void DhtNode::put_value(const Key& key, ValueRecord record,
                        std::function<void(bool, int)> done) {
  start_lookup(
      LookupType::kFindNode, key, routing_table_.closest(key, kReplication),
      [this, key, record = std::move(record),
       done = std::move(done)](LookupResult walk) {
        if (walk.closest.empty()) {
          done(false, 0);
          return;
        }
        auto stored = std::make_shared<int>(0);
        auto remaining =
            std::make_shared<int>(static_cast<int>(walk.closest.size()));
        for (const auto& peer : walk.closest) {
          transport_.connect(
              peer.node,
              [this, key, record, peer, stored, remaining,
               done](bool ok, sim::Duration) {
                auto finish = [stored, remaining, done] {
                  if (--*remaining == 0) done(*stored > 0, *stored);
                };
                if (!ok) {
                  finish();
                  return;
                }
                auto put = std::make_shared<PutValueRequest>();
                put->key = key;
                put->record = record;
                transport_.request(
                    peer.node, std::move(put),
                    kRequestBaseBytes + record.value.size(), kRpcTimeout,
                    [stored, finish](sim::RpcStatus status,
                                     const sim::MessagePtr&) {
                      if (status == sim::RpcStatus::kOk) ++*stored;
                      finish();
                    });
              });
        }
      });
}

void DhtNode::get_value(const Key& key,
                        std::function<void(std::optional<ValueRecord>)> done) {
  start_lookup(LookupType::kGetValue, key,
               routing_table_.closest(key, kReplication),
               [done = std::move(done)](LookupResult result) {
                 done(result.value);
               });
}

void DhtNode::get_values(const Key& key,
                         std::function<void(std::vector<ValueRecord>)> done) {
  start_lookup(LookupType::kGetValue, key,
               routing_table_.closest(key, kReplication),
               [done = std::move(done)](LookupResult result) {
                 done(std::move(result.values));
               });
}

}  // namespace ipfs::dht
