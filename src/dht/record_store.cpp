#include "dht/record_store.h"

#include <algorithm>

namespace ipfs::dht {

void RecordStore::add_provider(const Key& key, ProviderRecord record) {
  auto& records = providers_[key];
  const auto it = std::find_if(records.begin(), records.end(),
                               [&](const ProviderRecord& existing) {
                                 return existing.provider.id ==
                                        record.provider.id;
                               });
  if (it != records.end()) {
    *it = std::move(record);  // refresh timestamp and addresses
    return;
  }
  records.push_back(std::move(record));
}

std::vector<ProviderRecord> RecordStore::providers(const Key& key,
                                                   sim::Time now) {
  const auto it = providers_.find(key);
  if (it == providers_.end()) return {};
  auto& records = it->second;
  std::erase_if(records, [&](const ProviderRecord& record) {
    return now - record.received_at > provider_expiry_;
  });
  if (records.empty()) {
    providers_.erase(it);
    return {};
  }
  return records;
}

bool RecordStore::put_value(const Key& key, ValueRecord record) {
  const auto it = values_.find(key);
  if (it != values_.end() && it->second.sequence > record.sequence)
    return false;
  values_[key] = std::move(record);
  return true;
}

std::optional<ValueRecord> RecordStore::get_value(const Key& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::size_t RecordStore::stale_provider_count(sim::Time now,
                                              sim::Duration slack) const {
  std::size_t stale = 0;
  for (const auto& [key, records] : providers_) {
    for (const auto& record : records) {
      if (now - record.received_at > provider_expiry_ + slack) ++stale;
    }
  }
  return stale;
}

std::size_t RecordStore::expire_providers(sim::Time now) {
  std::size_t removed = 0;
  for (auto it = providers_.begin(); it != providers_.end();) {
    removed += std::erase_if(it->second, [&](const ProviderRecord& record) {
      return now - record.received_at > provider_expiry_;
    });
    if (it->second.empty())
      it = providers_.erase(it);
    else
      ++it;
  }
  return removed;
}

}  // namespace ipfs::dht
