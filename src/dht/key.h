// DHT keyspace (paper Section 2.3): CIDs and PeerIDs are indexed by the
// SHA-256 hash of their binary representations, giving a common 256-bit
// key space ordered by XOR distance.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>

#include "multiformats/cid.h"
#include "multiformats/peerid.h"

namespace ipfs::dht {

class Key {
 public:
  static constexpr std::size_t kBits = 256;

  Key() = default;
  explicit Key(const std::array<std::uint8_t, 32>& bytes) : bytes_(bytes) {}

  static Key for_cid(const multiformats::Cid& cid);
  static Key for_peer(const multiformats::PeerId& peer);
  static Key hash_of(std::span<const std::uint8_t> data);

  const std::array<std::uint8_t, 32>& bytes() const { return bytes_; }

  // XOR distance to another key.
  std::array<std::uint8_t, 32> distance_to(const Key& other) const;

  // Number of leading zero bits of the XOR distance; 256 when equal.
  // The bucket index for a peer at this distance is (255 - cpl).
  int common_prefix_len(const Key& other) const;

  // True if *this is strictly closer to `target` than `other` is.
  bool closer_to(const Key& target, const Key& other) const;

  std::string to_hex() const;

  bool operator==(const Key&) const = default;
  auto operator<=>(const Key&) const = default;

 private:
  std::array<std::uint8_t, 32> bytes_{};
};

struct KeyHasher {
  std::size_t operator()(const Key& key) const {
    std::size_t h = 0;
    for (int i = 0; i < 8; ++i)
      h = (h << 8) | key.bytes()[i];
    return h;
  }
};

}  // namespace ipfs::dht
