#include "dht/lookup.h"

#include <algorithm>

namespace ipfs::dht {

namespace {

const char* lookup_span_name(LookupType type) {
  switch (type) {
    case LookupType::kFindNode:
      return "dht.lookup.find_node";
    case LookupType::kGetProviders:
      return "dht.lookup.get_providers";
    case LookupType::kGetValue:
      return "dht.lookup.get_value";
  }
  return "dht.lookup.find_node";
}

}  // namespace

std::shared_ptr<Lookup> Lookup::start(
    LookupHost host, LookupType type, Key target, std::vector<PeerRef> seeds,
    Callback cb, std::optional<multiformats::PeerId> target_peer) {
  auto lookup = std::shared_ptr<Lookup>(new Lookup(
      std::move(host), type, std::move(target), std::move(cb),
      std::move(target_peer)));
  lookup->started_at_ = lookup->host_.transport->now();
  lookup->span_ = lookup->host_.transport->metrics().begin_span(
      lookup_span_name(type), lookup->host_.transport->local(), {},
      lookup->host_.parent_span);
  lookup->deadline_timer_ = lookup->host_.transport->schedule_after(
      kLookupDeadline, [weak = std::weak_ptr<Lookup>(lookup)] {
        if (auto self = weak.lock()) self->finish(false);
      });
  for (const auto& seed : seeds) lookup->add_candidate(seed);
  if (lookup->candidates_.empty()) {
    lookup->finish(true);
  } else {
    lookup->pump();
  }
  return lookup;
}

Lookup::Lookup(LookupHost host, LookupType type, Key target, Callback cb,
               std::optional<multiformats::PeerId> target_peer)
    : host_(std::move(host)),
      type_(type),
      target_(std::move(target)),
      cb_(std::move(cb)),
      target_peer_(std::move(target_peer)) {}

void Lookup::add_candidate(const PeerRef& peer) {
  if (peer.node == host_.transport->local()) return;
  const Key key = Key::for_peer(peer.id);
  if (index_.contains(key)) return;
  const auto distance = key.distance_to(target_);
  index_.emplace(key, distance);
  candidates_.emplace(distance, Candidate{peer, CandidateState::kUnqueried});

  // Early peer-discovery match: someone handed us the target's addresses.
  if (target_peer_ && peer.id == *target_peer_) {
    result_.target_peer = peer;
  }
}

bool Lookup::should_terminate() const {
  if (type_ == LookupType::kGetProviders &&
      result_.providers.size() >= std::max<std::size_t>(
                                      host_.provider_quorum, 1))
    return true;
  if (type_ == LookupType::kGetValue &&
      result_.values.size() >= kValueQuorum)
    return true;
  if (target_peer_ && result_.target_peer.has_value()) return true;

  // FindNode termination: the k closest non-failed candidates have all
  // responded (no closer unqueried or in-flight candidate remains).
  std::size_t seen = 0;
  for (const auto& [distance, candidate] : candidates_) {
    if (candidate.state == CandidateState::kFailed) continue;
    if (candidate.state != CandidateState::kResponded) return false;
    if (++seen >= kReplication) break;
  }
  return true;
}

void Lookup::pump() {
  if (finished_) return;
  if (should_terminate()) {
    // Any straggler queries are abandoned; their routing-table feedback
    // was best-effort anyway.
    finish(true);
    return;
  }

  for (auto& [distance, candidate] : candidates_) {
    if (in_flight_ >= kAlpha) break;
    if (candidate.state != CandidateState::kUnqueried) continue;
    candidate.state = CandidateState::kInFlight;
    ++in_flight_;
    query(Key::for_peer(candidate.peer.id));
  }

  // No queries possible and none in flight: candidate space exhausted.
  if (in_flight_ == 0) finish(true);
}

void Lookup::query(const Key& candidate_key) {
  const auto it = index_.find(candidate_key);
  const PeerRef peer = candidates_.at(it->second).peer;
  auto self = shared_from_this();
  host_.transport->connect(peer.node,
                           [self, candidate_key](bool ok, sim::Duration) {
                             self->on_dial_result(candidate_key, ok);
                           });
}

void Lookup::on_dial_result(const Key& candidate_key, bool ok) {
  if (finished_) return;
  const auto it = index_.find(candidate_key);
  Candidate& candidate = candidates_.at(it->second);
  if (!ok) {
    candidate.state = CandidateState::kFailed;
    --in_flight_;
    ++result_.dials_failed;
    host_.transport->metrics().counter("dht.lookup.dials_failed").inc();
    if (host_.on_peer_failed) host_.on_peer_failed(candidate.peer);
    pump();
    return;
  }

  sim::MessagePtr request;
  switch (type_) {
    case LookupType::kFindNode: {
      auto msg = std::make_shared<FindNodeRequest>();
      msg->target = target_;
      msg->requester = host_.self_ref;
      msg->requester_is_server = host_.server_mode;
      request = std::move(msg);
      break;
    }
    case LookupType::kGetProviders: {
      auto msg = std::make_shared<GetProvidersRequest>();
      msg->key = target_;
      msg->requester = host_.self_ref;
      msg->requester_is_server = host_.server_mode;
      request = std::move(msg);
      break;
    }
    case LookupType::kGetValue: {
      auto msg = std::make_shared<GetValueRequest>();
      msg->key = target_;
      msg->requester = host_.self_ref;
      msg->requester_is_server = host_.server_mode;
      request = std::move(msg);
      break;
    }
  }

  ++result_.rpcs_sent;
  host_.transport->metrics().counter("dht.lookup.rpcs_sent").inc();
  auto self = shared_from_this();
  host_.transport->request(
      candidate.peer.node, std::move(request), kRequestBaseBytes, kRpcTimeout,
      [self, candidate_key](sim::RpcStatus status,
                            const sim::MessagePtr& message) {
        self->on_response(candidate_key, status, message);
      });
}

void Lookup::on_response(const Key& candidate_key, sim::RpcStatus status,
                         const sim::MessagePtr& message) {
  if (finished_) return;
  const auto it = index_.find(candidate_key);
  Candidate& candidate = candidates_.at(it->second);
  --in_flight_;

  if (status != sim::RpcStatus::kOk) {
    candidate.state = CandidateState::kFailed;
    ++result_.rpcs_failed;
    host_.transport->metrics().counter("dht.lookup.rpcs_failed").inc();
    if (host_.on_peer_failed) host_.on_peer_failed(candidate.peer);
    pump();
    return;
  }

  candidate.state = CandidateState::kResponded;
  if (host_.on_peer_responded) host_.on_peer_responded(candidate.peer);

  std::vector<PeerRef> closer;
  if (const auto* find_node = dynamic_cast<const FindNodeResponse*>(
          message.get())) {
    closer = find_node->closer;
  } else if (const auto* providers = dynamic_cast<const GetProvidersResponse*>(
                 message.get())) {
    closer = providers->closer;
    for (const auto& record : providers->providers) {
      // Several resolvers replicate the same record; carrying duplicates
      // forward would skew retrieval's dial ordering (the same provider
      // dialed twice while a distinct fallback waits).
      const bool seen = std::any_of(
          result_.providers.begin(), result_.providers.end(),
          [&record](const ProviderRecord& have) {
            return have.provider.id == record.provider.id;
          });
      if (seen) {
        host_.transport->metrics()
            .counter("dht.lookup.duplicate_providers_dropped")
            .inc();
        continue;
      }
      result_.providers.push_back(record);
    }
  } else if (const auto* value = dynamic_cast<const GetValueResponse*>(
                 message.get())) {
    closer = value->closer;
    if (value->record) {
      result_.values.push_back(*value->record);
      if (!result_.value || value->record->sequence > result_.value->sequence)
        result_.value = value->record;
    }
  }

  for (const auto& peer : closer) add_candidate(peer);
  pump();
}

void Lookup::abort() {
  if (finished_) return;
  finished_ = true;
  deadline_timer_.cancel();
  host_.transport->metrics().end_span(span_, false);
  // In-flight RPC callbacks see finished_ and return without effect.
}

void Lookup::finish(bool completed) {
  if (finished_) return;
  finished_ = true;
  deadline_timer_.cancel();
  result_.completed = completed;
  result_.elapsed = host_.transport->now() - started_at_;
  host_.transport->metrics().end_span(
      span_, completed, static_cast<std::uint64_t>(result_.rpcs_sent));

  // Assemble the closest responded set.
  for (const auto& [distance, candidate] : candidates_) {
    if (candidate.state != CandidateState::kResponded) continue;
    result_.closest.push_back(candidate.peer);
    if (result_.closest.size() >= kReplication) break;
  }
  cb_(std::move(result_));
}

}  // namespace ipfs::dht
