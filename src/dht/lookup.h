// Multi-round iterative DHT lookup — the "DHT walk" of paper Section 3.2.
//
// Queries proceed with concurrency alpha = 3 towards the target key. Each
// step dials the peer (paying handshake or dial-timeout cost), issues the
// RPC, and merges returned closer-peers into the candidate set. FindNode
// walks terminate when the k closest discovered peers have all answered
// (publication needs the full closest set); provider walks terminate as
// soon as a record is found (retrieval needs just one). Value walks
// collect a quorum of records (go-ipfs get-value semantics): divergent
// replicas are expected — a stale node may hold an old IPNS sequence — so
// the walk gathers up to kValueQuorum records (or converges like FindNode)
// and the caller picks the highest valid sequence.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dht/key.h"
#include "dht/messages.h"
#include "transport/transport.h"

namespace ipfs::dht {

constexpr int kAlpha = 3;           // lookup concurrency (Section 3.2)
constexpr std::size_t kReplication = 20;  // k (Section 3.1)
constexpr sim::Duration kRpcTimeout = sim::seconds(10);
constexpr sim::Duration kLookupDeadline = sim::minutes(3);
// Records a value walk gathers before terminating (go-ipfs's get-value
// quorum). Small swarms converge earlier via the FindNode criterion.
constexpr std::size_t kValueQuorum = 16;

enum class LookupType { kFindNode, kGetProviders, kGetValue };

struct LookupResult {
  bool completed = false;  // false when the deadline cut the walk short
  std::vector<PeerRef> closest;            // responsive peers, closest first
  std::vector<ProviderRecord> providers;   // kGetProviders
  std::optional<ValueRecord> value;        // kGetValue: highest sequence seen
  std::vector<ValueRecord> values;         // kGetValue: every record gathered
  std::optional<PeerRef> target_peer;      // kFindNode early match
  sim::Duration elapsed = 0;
  int rpcs_sent = 0;
  int rpcs_failed = 0;
  int dials_failed = 0;
};

// Hooks back into the owning DHT node.
struct LookupHost {
  transport::Transport* transport = nullptr;
  // Requester identity stamped onto outgoing RPCs (see LookupRequestBase).
  PeerRef self_ref;
  bool server_mode = false;
  // Distinct provider records a kGetProviders walk gathers before
  // terminating. 1 is classic Kademlia (stop at the first record); raising
  // it is the eclipse defense: a single captured resolver serving a
  // poisoned record cannot end the walk, so honest record holders further
  // out still get queried. Walks that cannot reach the quorum converge
  // via the FindNode criterion, like value walks.
  std::size_t provider_quorum = 1;
  // Enclosing trace span (e.g. a retrieval's provider_walk phase); the
  // walk's dht.lookup.* span is parented under it when non-zero.
  metrics::SpanId parent_span = 0;
  // Routing-table feedback.
  std::function<void(const PeerRef&)> on_peer_responded;
  std::function<void(const PeerRef&)> on_peer_failed;
};

class Lookup : public std::enable_shared_from_this<Lookup> {
 public:
  using Callback = std::function<void(LookupResult)>;

  // `target_peer` enables early termination when looking up a specific
  // PeerID (peer discovery, Section 3.2).
  static std::shared_ptr<Lookup> start(
      LookupHost host, LookupType type, Key target,
      std::vector<PeerRef> seeds, Callback cb,
      std::optional<multiformats::PeerId> target_peer = std::nullopt);

  // Abandons the walk WITHOUT invoking the callback: the requester
  // crashed and nobody is waiting for the result. Needed because the
  // deadline timer is owned by the lookup, not the network fabric, so a
  // crashed node's walk would otherwise fire its callback at the 3 min
  // deadline.
  void abort();

 private:
  Lookup(LookupHost host, LookupType type, Key target, Callback cb,
         std::optional<multiformats::PeerId> target_peer);

  enum class CandidateState { kUnqueried, kInFlight, kResponded, kFailed };

  struct Candidate {
    PeerRef peer;
    CandidateState state = CandidateState::kUnqueried;
  };

  void add_candidate(const PeerRef& peer);
  void pump();                       // launch queries up to alpha
  void query(const Key& candidate_key);
  void on_dial_result(const Key& candidate_key, bool ok);
  void on_response(const Key& candidate_key, sim::RpcStatus status,
                   const sim::MessagePtr& message);
  bool should_terminate() const;
  void finish(bool completed);

  LookupHost host_;
  LookupType type_;
  Key target_;
  Callback cb_;
  std::optional<multiformats::PeerId> target_peer_;

  // Candidates keyed by XOR distance to the target (closest first).
  std::map<std::array<std::uint8_t, 32>, Candidate> candidates_;
  std::unordered_map<Key, std::array<std::uint8_t, 32>, KeyHasher> index_;

  LookupResult result_;
  sim::Time started_at_ = 0;
  transport::Timer deadline_timer_;
  metrics::SpanId span_ = 0;  // dht.lookup.<type> trace span
  int in_flight_ = 0;
  bool finished_ = false;
};

}  // namespace ipfs::dht
