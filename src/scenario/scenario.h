// ScenarioBuilder: the one way experiments construct simulations.
//
// Every bench, fuzz schedule and protocol test used to hand-roll the
// same four-step dance — make a Simulator, pick a LatencyModel, wire a
// Network, loop add_node with a NodeConfig — with small, easy-to-drift
// variations. The builder folds that into a fluent description:
//
//   auto s = scenario::ScenarioBuilder()
//                .peers(60)
//                .seed(42)
//                .single_region(20.0)
//                .dht_servers(true)
//                .build();
//   s.dht(0).find_node(...);
//   s.simulator().run();
//
// Two build modes share the knob surface:
//
//  - build() assembles a Scenario: a bare fabric (Simulator + Latency +
//    Network) plus `peers` nodes, optionally wrapped in DhtNode servers
//    with routing tables pre-seeded from a random sample — the converged
//    mini-swarm the protocol tests want.
//  - build_world() delegates to world::World: full geography, churn,
//    NAT'ed population and Kademlia convergence — the paper-scale swarm
//    the benches want. Swarm-only knobs (regions, node_defaults, ...)
//    are ignored there; world-only knobs (churn, hydra, ...) are
//    ignored by build().
//
// Both modes are deterministic functions of seed(): the builder never
// consults global state, so a Scenario rebuilt from the same chain is
// bit-identical, including under the legacy heap scheduler selected via
// scheduler() (the old-vs-new determinism proof in sim_test relies on
// this).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/adversary.h"
#include "dht/dht_node.h"
#include "gateway/fleet.h"
#include "multiformats/multiaddr.h"
#include "multiformats/peerid.h"
#include "pubsub/pubsub.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "transport/sim_transport.h"
#include "world/world.h"

namespace ipfs::scenario {

// Deterministic PeerID for synthetic swarm peers: identity-multihash
// framing identical to Ed25519 PeerIDs, derived by hashing the index.
// (world::synthetic_peer_id is the domain-separated sibling used for
// world populations; the two must stay distinct so a test swarm and a
// world never alias identities.)
multiformats::PeerId synthetic_peer_id(std::uint64_t n);

// Deterministic 10.x.y.1 TCP multiaddr for peer n.
multiformats::Multiaddr synthetic_address(std::uint32_t n);

// A built swarm scenario. Owns the whole stack; movable, not copyable.
// dht_nodes is empty unless dht_servers(true) was set.
class Scenario {
 public:
  sim::Simulator& simulator() { return *simulator_; }
  sim::Network& network() { return *network_; }
  const sim::LatencyModel& latency_model() const { return *latency_; }

  std::size_t size() const { return nodes_.size(); }
  sim::NodeId node(std::size_t i) const { return nodes_[i]; }
  const std::vector<sim::NodeId>& nodes() const { return nodes_; }

  dht::DhtNode& dht(std::size_t i) { return *dht_nodes_[i]; }
  // A transport endpoint for peer i, created on first use (a SimTransport
  // wrapper is pure delegation, so lazy creation perturbs nothing).
  // Lets tests drive transport-facing APIs (routers, advertisements) on
  // scenarios that skipped the DHT layer.
  transport::Transport& transport(std::size_t i);
  const dht::PeerRef& ref(std::size_t i) const { return refs_[i]; }
  const std::vector<dht::PeerRef>& refs() const { return refs_; }

  // Empty unless pubsub(true) was set.
  pubsub::Pubsub& pubsub(std::size_t i) { return *pubsub_nodes_[i]; }
  bool has_pubsub() const { return !pubsub_nodes_.empty(); }

  // Null unless faults() was configured. The plan is constructed but
  // not armed; call faults().arm() to start background fault processes.
  sim::FaultPlan* faults() { return faults_.get(); }

  // Null unless an attack knob (sybils/eclipse/flash_crowd/churn_storm/
  // partition) was configured. Constructed but not armed; with
  // dht_servers(true) every peer is pre-registered as a victim. Arm
  // after faults()->arm() and detach before faults()->detach() — the
  // partition decorator wraps whatever injector is installed at arm().
  adversary::AttackPlan* attack() { return attack_.get(); }

  // Empty unless indexers(n) was set. Indexer nodes are appended to the
  // network after every peer node so enabling them leaves pre-existing
  // node ids and seeded rng streams bit-identical.
  std::size_t indexer_count() const { return indexers_.size(); }
  indexer::Indexer& indexer(std::size_t i) { return *indexers_[i]; }

  // Routing config carrying the builder's routing(mode) choice plus the
  // NodeIds of every built indexer — what an IpfsNodeConfig wants.
  const routing::RoutingConfig& routing_config() const { return routing_; }

  // Null unless gateway_fleet() was configured. Replica nodes are
  // appended after indexer nodes, so enabling the fleet leaves every
  // pre-existing node id and seeded rng stream bit-identical. The fleet
  // is constructed un-bootstrapped; call gateway_fleet()->bootstrap().
  gateway::GatewayFleet* gateway_fleet() { return gateway_fleet_.get(); }

  // The builder's node_store() choice — what an IpfsNodeConfig::store
  // wants when a test or bench adds its own nodes to this scenario.
  const blockstore::StoreConfig& store_config() const { return store_; }

 private:
  friend class ScenarioBuilder;

  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<sim::LatencyModel> latency_;
  std::unique_ptr<sim::Network> network_;
  std::vector<sim::NodeId> nodes_;
  // Lazily-populated per-peer endpoints for transport(i); index-aligned
  // with nodes_ once created.
  std::vector<std::unique_ptr<transport::SimTransport>> transports_;
  std::vector<std::unique_ptr<dht::DhtNode>> dht_nodes_;
  // Declared after dht_nodes_ so engines (holding Timer handles) are
  // destroyed before the fabric members above them.
  std::vector<std::unique_ptr<pubsub::Pubsub>> pubsub_nodes_;
  std::vector<std::unique_ptr<indexer::Indexer>> indexers_;
  // Declared after indexers_ (replica routing may reference them) and
  // before faults_/attack_ so it unwinds after the attack plan.
  std::unique_ptr<gateway::GatewayFleet> gateway_fleet_;
  std::vector<dht::PeerRef> refs_;
  std::unique_ptr<sim::FaultPlan> faults_;
  // Declared after faults_: holds Timers into simulator_ and appends its
  // attacker nodes last, so it must unwind before the fabric.
  std::unique_ptr<adversary::AttackPlan> attack_;
  routing::RoutingConfig routing_;
  blockstore::StoreConfig store_;
};

class ScenarioBuilder {
 public:
  // ------------------------------------------------------ shared knobs
  ScenarioBuilder& peers(std::size_t n);
  ScenarioBuilder& seed(std::uint64_t s);
  ScenarioBuilder& scheduler(sim::SchedulerBackend backend);

  // Sharded parallel event core (src/sim/parallel): 0 keeps the
  // sequential Simulator, N >= 1 partitions the fabric into N per-shard
  // event queues synchronized by the latency-floor lookahead. The merge
  // order is shard-count invariant, so any N replays the 1-shard trace
  // byte-identically (docs/SCALING.md, "Sharded core").
  ScenarioBuilder& shards(std::size_t n);

  // ------------------------------------------------------- swarm knobs
  // Latency geography for build(): an explicit one-way-ms matrix (with
  // the fabric's default multiplicative jitter), a single region with
  // jitter-free uniform latency (the tests' default), or the paper's
  // 8-region world matrix.
  ScenarioBuilder& regions(std::vector<std::vector<double>> one_way_ms,
                           double jitter_low = 0.95,
                           double jitter_high = 1.25);
  ScenarioBuilder& single_region(double one_way_ms);
  ScenarioBuilder& world_geography();

  // Template NodeConfig applied to every peer (region defaults to 0).
  ScenarioBuilder& node_defaults(sim::NodeConfig config);

  // Marks an undialable share of peers. In build(), each peer is drawn
  // undialable with probability f from a dedicated rng fork (so f = 0
  // leaves every other draw sequence untouched). In build_world() this
  // maps onto PopulationConfig::undialable_share.
  ScenarioBuilder& undialable_fraction(double f);

  // Wraps every node in a dht::DhtNode server (synthetic identity,
  // attached handlers) and pre-seeds routing tables from a random
  // sample of `routing_sample` picks per node.
  ScenarioBuilder& dht_servers(bool enable = true);
  ScenarioBuilder& routing_sample(std::size_t picks_per_node);

  // Wraps every node in a pubsub::Pubsub engine. Each engine's candidate
  // set is pre-seeded with `pubsub_candidates` random peers drawn from a
  // dedicated rng fork (so enabling pubsub leaves every pre-existing
  // seeded stream bit-identical). Composes with dht_servers(): the
  // message handler multiplexes DHT first, then pubsub.
  ScenarioBuilder& pubsub(bool enable = true);
  ScenarioBuilder& pubsub_config(pubsub::PubsubConfig config);
  ScenarioBuilder& pubsub_candidates(std::size_t picks_per_node);

  // Network indexers for delegated content routing (docs/ROUTING.md).
  // build() appends `n` indexer nodes after every peer node; build_world()
  // maps the knobs onto WorldConfig::indexer_count / ::indexer. routing()
  // selects the ContentRouter mode the scenario's routing_config() (and
  // World::routing_config()) hands to IpfsNodeConfig::routing.
  ScenarioBuilder& indexers(std::size_t n);
  ScenarioBuilder& indexer_config(indexer::IndexerConfig config);
  ScenarioBuilder& routing(routing::RoutingConfig::Mode mode);

  // Gateway fleet (docs/GATEWAY.md): N consistent-hash-routed replicas
  // over a shared origin cache, appended to the network after indexers.
  // The replica template's node.routing is overwritten with the built
  // scenario's routing_config(), so indexers()/routing() compose.
  ScenarioBuilder& gateway_fleet(gateway::FleetConfig config);

  // Block-store backend for every IpfsNode the scenario stack constructs
  // (docs/BLOCKSTORE.md): applied to gateway-fleet replicas and exposed
  // through Scenario::store_config() for call sites that build their own
  // nodes on the fabric. Defaults to the in-memory map store.
  ScenarioBuilder& node_store(blockstore::StoreConfig config);

  // Constructs (but does not arm) a FaultPlan over the built network.
  ScenarioBuilder& faults(sim::FaultConfig config);

  // ------------------------------------------------------ attack knobs
  // Adversarial controllers (docs/ADVERSARY.md). Any of these makes
  // build() construct an (unarmed) adversary::AttackPlan, reachable via
  // Scenario::attack(). Attacker nodes are appended after indexer nodes,
  // so switched-off attacks leave node ids and every seeded rng stream
  // bit-identical. With dht_servers(true) each peer is pre-registered as
  // a flood/announce victim.
  ScenarioBuilder& sybils(adversary::SybilConfig config);
  ScenarioBuilder& eclipse(const dht::Key& target,
                           adversary::EclipseConfig config = {});
  ScenarioBuilder& flash_crowd(adversary::FlashCrowdConfig config);
  ScenarioBuilder& churn_storm(adversary::ChurnStormConfig config);
  ScenarioBuilder& partition(std::vector<std::vector<int>> region_groups,
                             sim::Duration heal_at,
                             sim::Duration start = 0);
  // Tweaks shared attack infrastructure (sybil front nodes, region).
  ScenarioBuilder& attack_infra(std::size_t sybil_front_nodes,
                                int attacker_region);

  // Ring-buffer capacity of the metrics trace (0 keeps the default).
  ScenarioBuilder& trace_capacity(std::size_t capacity);

  // ------------------------------------------------------- world knobs
  ScenarioBuilder& churn(bool enable);
  ScenarioBuilder& bootstrap_count(std::size_t n);
  ScenarioBuilder& max_routing_entries(std::size_t n);
  ScenarioBuilder& dcutr_share(double share);
  ScenarioBuilder& hydra(std::size_t count, std::size_t heads);

  // ------------------------------------------------------------ builds
  Scenario build() const;
  std::unique_ptr<world::World> build_world() const;
  // The WorldConfig build_world() would use (for call sites that still
  // need to tweak a field the builder doesn't surface).
  world::WorldConfig world_config() const;

 private:
  adversary::AttackConfig& ensure_attack();

  std::size_t peers_ = 0;
  std::uint64_t seed_ = 42;
  sim::SchedulerBackend scheduler_ = sim::SchedulerBackend::kTimerWheel;
  std::size_t shards_ = 0;

  std::vector<std::vector<double>> latency_matrix_{{20.0}};
  double jitter_low_ = 1.0;
  double jitter_high_ = 1.0;
  bool world_geography_ = false;

  sim::NodeConfig node_defaults_{};
  std::optional<double> undialable_fraction_;
  bool dht_servers_ = false;
  std::size_t routing_sample_ = 40;
  bool pubsub_ = false;
  pubsub::PubsubConfig pubsub_config_{};
  std::size_t pubsub_candidates_ = 10;
  std::optional<sim::FaultConfig> fault_config_;
  std::optional<adversary::AttackConfig> attack_config_;
  std::size_t trace_capacity_ = 0;
  std::size_t indexer_count_ = 0;
  indexer::IndexerConfig indexer_config_{};
  std::optional<gateway::FleetConfig> gateway_fleet_config_;
  blockstore::StoreConfig node_store_{};
  routing::RoutingConfig::Mode routing_mode_ = routing::RoutingConfig::Mode::kDht;

  bool enable_churn_ = true;
  std::size_t bootstrap_count_ = 6;
  std::size_t max_routing_entries_ = 192;
  double dcutr_share_ = 0.0;
  std::size_t hydra_count_ = 0;
  std::size_t hydra_heads_ = 10;
};

}  // namespace ipfs::scenario
