#include "scenario/scenario.h"

#include <algorithm>
#include <string>

#include "crypto/sha256.h"
#include "world/geography.h"

namespace ipfs::scenario {

multiformats::PeerId synthetic_peer_id(std::uint64_t n) {
  std::uint8_t seed[8];
  for (int i = 0; i < 8; ++i) seed[i] = static_cast<std::uint8_t>(n >> (8 * i));
  const auto digest = crypto::sha256(std::span<const std::uint8_t>(seed, 8));
  crypto::Ed25519PublicKey key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return multiformats::PeerId::from_public_key(key);
}

multiformats::Multiaddr synthetic_address(std::uint32_t n) {
  const std::string ip = std::to_string(10 + (n >> 16)) + "." +
                         std::to_string((n >> 8) & 0xff) + "." +
                         std::to_string(n & 0xff) + ".1";
  return multiformats::make_tcp_multiaddr(ip, 4001);
}

ScenarioBuilder& ScenarioBuilder::peers(std::size_t n) {
  peers_ = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::scheduler(sim::SchedulerBackend backend) {
  scheduler_ = backend;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::shards(std::size_t n) {
  shards_ = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::regions(
    std::vector<std::vector<double>> one_way_ms, double jitter_low,
    double jitter_high) {
  latency_matrix_ = std::move(one_way_ms);
  jitter_low_ = jitter_low;
  jitter_high_ = jitter_high;
  world_geography_ = false;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::single_region(double one_way_ms) {
  return regions({{one_way_ms}}, 1.0, 1.0);
}

ScenarioBuilder& ScenarioBuilder::world_geography() {
  world_geography_ = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::node_defaults(sim::NodeConfig config) {
  node_defaults_ = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::undialable_fraction(double f) {
  undialable_fraction_ = f;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::dht_servers(bool enable) {
  dht_servers_ = enable;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::routing_sample(std::size_t picks_per_node) {
  routing_sample_ = picks_per_node;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pubsub(bool enable) {
  pubsub_ = enable;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pubsub_config(pubsub::PubsubConfig config) {
  pubsub_config_ = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pubsub_candidates(
    std::size_t picks_per_node) {
  pubsub_candidates_ = picks_per_node;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::indexers(std::size_t n) {
  indexer_count_ = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::indexer_config(indexer::IndexerConfig config) {
  indexer_config_ = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::routing(routing::RoutingConfig::Mode mode) {
  routing_mode_ = mode;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::gateway_fleet(gateway::FleetConfig config) {
  gateway_fleet_config_ = std::move(config);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::node_store(blockstore::StoreConfig config) {
  node_store_ = std::move(config);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::faults(sim::FaultConfig config) {
  fault_config_ = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::sybils(adversary::SybilConfig config) {
  ensure_attack().sybil = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::eclipse(const dht::Key& target,
                                          adversary::EclipseConfig config) {
  adversary::AttackConfig& attack = ensure_attack();
  attack.eclipse_target = target;
  attack.eclipse = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::flash_crowd(
    adversary::FlashCrowdConfig config) {
  ensure_attack().flash_crowd = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::churn_storm(
    adversary::ChurnStormConfig config) {
  ensure_attack().churn_storm = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::partition(
    std::vector<std::vector<int>> region_groups, sim::Duration heal_at,
    sim::Duration start) {
  adversary::PartitionConfig config;
  config.groups = std::move(region_groups);
  config.heal_at = heal_at;
  config.start = start;
  ensure_attack().partition = std::move(config);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::attack_infra(std::size_t sybil_front_nodes,
                                               int attacker_region) {
  adversary::AttackConfig& attack = ensure_attack();
  attack.sybil_front_nodes = sybil_front_nodes;
  attack.attacker_region = attacker_region;
  return *this;
}

adversary::AttackConfig& ScenarioBuilder::ensure_attack() {
  if (!attack_config_) attack_config_.emplace();
  return *attack_config_;
}

ScenarioBuilder& ScenarioBuilder::trace_capacity(std::size_t capacity) {
  trace_capacity_ = capacity;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::churn(bool enable) {
  enable_churn_ = enable;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::bootstrap_count(std::size_t n) {
  bootstrap_count_ = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::max_routing_entries(std::size_t n) {
  max_routing_entries_ = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::dcutr_share(double share) {
  dcutr_share_ = share;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::hydra(std::size_t count, std::size_t heads) {
  hydra_count_ = count;
  hydra_heads_ = heads;
  return *this;
}

transport::Transport& Scenario::transport(std::size_t i) {
  if (transports_.size() <= i) transports_.resize(nodes_.size());
  if (!transports_[i])
    transports_[i] =
        std::make_unique<transport::SimTransport>(*network_, nodes_[i]);
  return *transports_[i];
}

Scenario ScenarioBuilder::build() const {
  Scenario scenario;
  scenario.simulator_ = std::make_unique<sim::Simulator>(scheduler_);
  scenario.latency_ = std::make_unique<sim::LatencyModel>(
      world_geography_
          ? world::default_latency_model()
          : sim::LatencyModel(latency_matrix_, jitter_low_, jitter_high_));
  scenario.network_ = std::make_unique<sim::Network>(
      *scenario.simulator_, *scenario.latency_, seed_);
  scenario.network_->enable_sharding(shards_);
  if (trace_capacity_ > 0)
    scenario.network_->metrics().set_trace_capacity(trace_capacity_);

  // Dialability draws come from a dedicated fork so that leaving the
  // knob unset keeps every other seeded stream (including the routing
  // sample below, which pre-dates the knob) bit-identical.
  sim::Rng dial_rng = sim::Rng(seed_).fork("scenario.dialable");
  scenario.nodes_.reserve(peers_);
  for (std::size_t i = 0; i < peers_; ++i) {
    sim::NodeConfig config = node_defaults_;
    if (undialable_fraction_ && dial_rng.chance(*undialable_fraction_))
      config.dialable = false;
    scenario.nodes_.push_back(scenario.network_->add_node(config));
  }

  if (dht_servers_) {
    sim::Rng rng(seed_);
    scenario.dht_nodes_.reserve(peers_);
    scenario.refs_.reserve(peers_);
    for (std::size_t i = 0; i < peers_; ++i) {
      auto dht = std::make_unique<dht::DhtNode>(
          *scenario.network_, scenario.nodes_[i], synthetic_peer_id(i),
          std::vector<multiformats::Multiaddr>{
              synthetic_address(static_cast<std::uint32_t>(i))});
      dht->force_mode(dht::DhtNode::Mode::kServer);
      dht->attach_to_network();
      scenario.dht_nodes_.push_back(std::move(dht));
      scenario.refs_.push_back(scenario.dht_nodes_.back()->self());
    }
    // Pre-seed routing tables from a random sample of the swarm,
    // standing in for an already-converged network.
    for (auto& node : scenario.dht_nodes_) {
      const std::size_t sample =
          std::min<std::size_t>(peers_ - 1, routing_sample_);
      for (std::size_t j = 0; j < sample; ++j) {
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(peers_) - 1));
        if (scenario.refs_[pick].id == node->self().id) continue;
        node->routing_table().upsert(scenario.refs_[pick]);
      }
    }
  }

  if (pubsub_) {
    pubsub::PubsubConfig engine_config = pubsub_config_;
    if (engine_config.seed == 0) engine_config.seed = seed_;
    scenario.pubsub_nodes_.reserve(peers_);
    for (std::size_t i = 0; i < peers_; ++i) {
      scenario.pubsub_nodes_.push_back(std::make_unique<pubsub::Pubsub>(
          *scenario.network_, scenario.nodes_[i], engine_config));
      // Multiplex: DHT traffic first (when servers exist), gossip second.
      pubsub::Pubsub* engine = scenario.pubsub_nodes_.back().get();
      dht::DhtNode* dht =
          dht_servers_ ? scenario.dht_nodes_[i].get() : nullptr;
      scenario.network_->set_message_handler(
          scenario.nodes_[i],
          [dht, engine](sim::NodeId from, const sim::MessagePtr& message) {
            if (dht != nullptr && dht->handle_message(from, message)) return;
            engine->handle_message(from, message);
          });
    }
    // Ambient peer discovery stands in for a converged swarm: each engine
    // learns a few random peers, like the routing pre-seed above. The
    // dedicated fork keeps pubsub-off scenarios bit-identical.
    sim::Rng pubsub_rng = sim::Rng(seed_).fork("scenario.pubsub");
    for (std::size_t i = 0; i < peers_ && peers_ > 1; ++i) {
      const std::size_t sample =
          std::min<std::size_t>(peers_ - 1, pubsub_candidates_);
      for (std::size_t j = 0; j < sample; ++j) {
        const auto pick = static_cast<std::size_t>(pubsub_rng.uniform_int(
            0, static_cast<std::int64_t>(peers_) - 1));
        if (pick == i) continue;
        scenario.pubsub_nodes_[i]->add_candidate_peer(scenario.nodes_[pick]);
      }
    }
  }

  // Indexers go in last — after every peer node — so turning the knob
  // leaves pre-existing node ids and rng streams bit-identical. They
  // draw no randomness of their own.
  scenario.routing_.mode = routing_mode_;
  scenario.store_ = node_store_;
  for (std::size_t i = 0; i < indexer_count_; ++i) {
    scenario.indexers_.push_back(std::make_unique<indexer::Indexer>(
        *scenario.network_, indexer_config_));
    scenario.routing_.indexers.push_back(scenario.indexers_.back()->node());
  }

  // The gateway fleet is appended after indexers (its replica nodes draw
  // no scenario randomness) and wired to whatever routing the scenario
  // built, so .indexers()/.routing() knobs flow into replica retrievals.
  if (gateway_fleet_config_) {
    gateway::FleetConfig fleet_config = *gateway_fleet_config_;
    fleet_config.replica.node.routing = scenario.routing_;
    fleet_config.replica.node.store = node_store_;
    scenario.gateway_fleet_ = std::make_unique<gateway::GatewayFleet>(
        *scenario.network_, fleet_config);
  }

  if (fault_config_) {
    scenario.faults_ = std::make_unique<sim::FaultPlan>(
        *scenario.network_, *fault_config_, seed_);
  }

  // Attacker nodes go in dead last — after peers and indexers — so a
  // switched-off attack leaves every honest node id and rng stream
  // bit-identical. The plan is constructed unarmed; with DHT servers the
  // whole swarm is pre-registered as flood/announce victims.
  if (attack_config_ && attack_config_->any()) {
    scenario.attack_ = std::make_unique<adversary::AttackPlan>(
        *scenario.network_, *attack_config_, seed_);
    if (dht_servers_)
      for (const dht::PeerRef& ref : scenario.refs_)
        scenario.attack_->add_victim(ref);
  }
  return scenario;
}

world::WorldConfig ScenarioBuilder::world_config() const {
  world::WorldConfig config;
  config.population.peer_count = peers_;
  if (undialable_fraction_)
    config.population.undialable_share = *undialable_fraction_;
  config.seed = seed_;
  config.scheduler = scheduler_;
  config.shards = shards_;
  config.enable_churn = enable_churn_;
  config.bootstrap_count = bootstrap_count_;
  config.max_routing_entries = max_routing_entries_;
  config.dcutr_share = dcutr_share_;
  config.hydra_count = hydra_count_;
  config.hydra_heads = hydra_heads_;
  config.indexer_count = indexer_count_;
  config.indexer = indexer_config_;
  return config;
}

std::unique_ptr<world::World> ScenarioBuilder::build_world() const {
  return std::make_unique<world::World>(world_config());
}

}  // namespace ipfs::scenario
