// IPNS (paper Section 3.3): mutable naming on top of immutable CIDs.
// A name is the hash of the publisher's public key (its PeerID); the
// record maps that name to a CID path and is signed with the matching
// private key, so any peer can verify it without trusting the DHT.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "crypto/ed25519.h"
#include "dht/dht_node.h"
#include "multiformats/cid.h"
#include "multiformats/peerid.h"
#include "sim/time.h"

namespace ipfs::ipns {

// Default record lifetime used by go-ipfs.
constexpr sim::Duration kDefaultValidity = sim::hours(24);

struct IpnsRecord {
  std::vector<std::uint8_t> value;  // "/ipfs/<cid>" path bytes
  std::uint64_t sequence = 0;
  std::uint64_t validity_us = 0;  // lifetime in microseconds
  crypto::Ed25519PublicKey public_key{};
  crypto::Ed25519Signature signature{};

  // Builds and signs a record pointing at `target`.
  static IpnsRecord create(const crypto::Ed25519KeyPair& keypair,
                           const multiformats::Cid& target,
                           std::uint64_t sequence,
                           sim::Duration validity = kDefaultValidity);

  std::vector<std::uint8_t> encode() const;
  static std::optional<IpnsRecord> decode(std::span<const std::uint8_t> data);

  // Verifies the signature AND that the embedded key hashes to `name`
  // (self-certification: the name owner is the only valid signer).
  bool verify(const multiformats::PeerId& name) const;

  // The CID the record points at, if the value parses.
  std::optional<multiformats::Cid> target() const;

 private:
  std::vector<std::uint8_t> signed_payload() const;
};

// The DHT key an IPNS record for `name` lives under.
dht::Key ipns_key(const multiformats::PeerId& name);

// Publishes a signed record mapping the keypair's PeerID to `target`.
void publish(dht::DhtNode& dht, const crypto::Ed25519KeyPair& keypair,
             const multiformats::Cid& target, std::uint64_t sequence,
             std::function<void(bool ok, int replicas)> done);

// Resolves `name` to its current target CID: gathers a quorum of DHT
// records (dht::kValueQuorum), drops any that fail verification, and
// returns the target of the highest valid sequence (go-ipfs semantics).
void resolve(dht::DhtNode& dht, const multiformats::PeerId& name,
             std::function<void(std::optional<multiformats::Cid>)> done);

// Picks the highest-sequence record among `values` that decodes and
// verifies against `name`. Shared by the DHT and pubsub resolve paths.
std::optional<IpnsRecord> select_record(
    const multiformats::PeerId& name,
    const std::vector<dht::ValueRecord>& values);

}  // namespace ipfs::ipns
