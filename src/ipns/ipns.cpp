#include "ipns/ipns.h"

#include <cstring>

#include "multiformats/varint.h"

namespace ipfs::ipns {
namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

}  // namespace

std::vector<std::uint8_t> IpnsRecord::signed_payload() const {
  constexpr std::string_view kDomain = "ipns-record:";  // domain separation
  std::vector<std::uint8_t> payload;
  payload.reserve(kDomain.size() + value.size() + 16);
  payload.insert(payload.end(), kDomain.begin(), kDomain.end());
  payload.insert(payload.end(), value.begin(), value.end());
  put_u64(payload, sequence);
  put_u64(payload, validity_us);
  return payload;
}

IpnsRecord IpnsRecord::create(const crypto::Ed25519KeyPair& keypair,
                              const multiformats::Cid& target,
                              std::uint64_t sequence, sim::Duration validity) {
  IpnsRecord record;
  const std::string path = "/ipfs/" + target.to_string();
  record.value.assign(path.begin(), path.end());
  record.sequence = sequence;
  record.validity_us = static_cast<std::uint64_t>(validity);
  record.public_key = keypair.public_key;
  record.signature = crypto::ed25519_sign(keypair, record.signed_payload());
  return record;
}

std::vector<std::uint8_t> IpnsRecord::encode() const {
  std::vector<std::uint8_t> out;
  multiformats::varint_encode(value.size(), out);
  out.insert(out.end(), value.begin(), value.end());
  put_u64(out, sequence);
  put_u64(out, validity_us);
  out.insert(out.end(), public_key.begin(), public_key.end());
  out.insert(out.end(), signature.begin(), signature.end());
  return out;
}

std::optional<IpnsRecord> IpnsRecord::decode(
    std::span<const std::uint8_t> data) {
  const auto length = multiformats::varint_decode(data);
  if (!length) return std::nullopt;
  data = data.subspan(length->consumed);
  if (data.size() != length->value + 16 + 32 + 64) return std::nullopt;

  IpnsRecord record;
  record.value.assign(data.begin(), data.begin() + length->value);
  data = data.subspan(length->value);
  record.sequence = get_u64(data);
  record.validity_us = get_u64(data.subspan(8));
  data = data.subspan(16);
  std::memcpy(record.public_key.data(), data.data(), 32);
  std::memcpy(record.signature.data(), data.data() + 32, 64);
  return record;
}

bool IpnsRecord::verify(const multiformats::PeerId& name) const {
  // Self-certification: the embedded key must hash to the name.
  if (multiformats::PeerId::from_public_key(public_key) != name) return false;
  return crypto::ed25519_verify(public_key, signed_payload(), signature);
}

std::optional<multiformats::Cid> IpnsRecord::target() const {
  const std::string path(value.begin(), value.end());
  if (!path.starts_with("/ipfs/")) return std::nullopt;
  return multiformats::Cid::parse(path.substr(6));
}

dht::Key ipns_key(const multiformats::PeerId& name) {
  return dht::Key::for_peer(name);
}

void publish(dht::DhtNode& dht, const crypto::Ed25519KeyPair& keypair,
             const multiformats::Cid& target, std::uint64_t sequence,
             std::function<void(bool, int)> done) {
  const IpnsRecord record = IpnsRecord::create(keypair, target, sequence);
  dht::ValueRecord wrapped;
  wrapped.value = record.encode();
  wrapped.sequence = sequence;
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  dht.put_value(ipns_key(name), std::move(wrapped), std::move(done));
}

std::optional<IpnsRecord> select_record(
    const multiformats::PeerId& name,
    const std::vector<dht::ValueRecord>& values) {
  std::optional<IpnsRecord> best;
  for (const auto& value : values) {
    const auto record = IpnsRecord::decode(value.value);
    if (!record || !record->verify(name)) continue;  // forged or corrupt
    if (!best || record->sequence > best->sequence) best = record;
  }
  return best;
}

void resolve(dht::DhtNode& dht, const multiformats::PeerId& name,
             std::function<void(std::optional<multiformats::Cid>)> done) {
  // Quorum semantics (go-ipfs): gather up to dht::kValueQuorum records —
  // stale replicas holding superseded sequences are expected — then pick
  // the highest sequence among the *valid* ones. Validity is checked
  // here, not in the DHT walk, because it needs the IPNS signature.
  dht.get_values(ipns_key(name), [name, done = std::move(done)](
                                     std::vector<dht::ValueRecord> values) {
    const auto best = select_record(name, values);
    done(best ? best->target() : std::nullopt);
  });
}

}  // namespace ipfs::ipns
