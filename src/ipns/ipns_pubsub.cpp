#include "ipns/ipns_pubsub.h"

#include <utility>

namespace ipfs::ipns {

pubsub::Topic pubsub_topic(const multiformats::PeerId& name) {
  return "/record/ipns/" + name.to_base58();
}

void PubsubResolver::publish(const crypto::Ed25519KeyPair& keypair,
                             const multiformats::Cid& target,
                             std::uint64_t sequence,
                             std::function<void(bool, int)> done) {
  const auto name = multiformats::PeerId::from_public_key(keypair.public_key);
  const IpnsRecord record = IpnsRecord::create(keypair, target, sequence);

  // Fast plane: broadcast the signed record to the topic mesh.
  pubsub_.publish(pubsub_topic(name), record.encode());

  // Publishers answer their own resolves from cache, and a publisher that
  // also follows its name must not regress when a stale copy echoes back.
  const auto it = cache_.find(pubsub_topic(name));
  if (it == cache_.end() || record.sequence > it->second.sequence)
    cache_[pubsub_topic(name)] = record;

  // Authoritative plane: the usual DHT walk + replicated PUT.
  ipns::publish(dht_, keypair, target, sequence, std::move(done));
}

void PubsubResolver::follow(const multiformats::PeerId& name) {
  followed_.insert(name);
  const pubsub::Topic topic = pubsub_topic(name);
  if (pubsub_.subscribed(topic)) return;
  pubsub_.subscribe(topic, [this, name](const pubsub::PubsubMessage& message) {
    accept(name, message);
  });
}

bool PubsubResolver::following(const multiformats::PeerId& name) const {
  return followed_.contains(name);
}

void PubsubResolver::accept(const multiformats::PeerId& name,
                            const pubsub::PubsubMessage& message) {
  auto& metrics = dht_.transport().metrics();
  const auto record = IpnsRecord::decode(message.data);
  // Self-certification gate: any mesh member can inject bytes, so nothing
  // unverified touches the cache.
  if (!record || !record->verify(name)) {
    metrics.counter("ipns.pubsub.rejected").inc();
    return;
  }
  const auto it = cache_.find(message.topic);
  if (it != cache_.end() && record->sequence <= it->second.sequence) {
    metrics.counter("ipns.pubsub.stale_ignored").inc();
    return;
  }
  cache_[message.topic] = *record;
  metrics.counter("ipns.pubsub.accepted").inc();
}

std::optional<IpnsRecord> PubsubResolver::cached(
    const multiformats::PeerId& name) const {
  const auto it = cache_.find(pubsub_topic(name));
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

void PubsubResolver::resolve(const multiformats::PeerId& name,
                             ResolveFn done) {
  auto& metrics = dht_.transport().metrics();
  if (const auto record = cached(name)) {
    metrics.counter("ipns.pubsub.cache_hit").inc();
    done(record->target());
    return;
  }
  metrics.counter("ipns.pubsub.cache_miss").inc();
  // Fallback: quorum DHT walk; the winning record seeds the cache so the
  // next resolve is local (mirroring go-ipfs, which bridges DHT results
  // into the pubsub cache).
  dht_.get_values(
      ipns_key(name), [this, name, done = std::move(done)](
                          std::vector<dht::ValueRecord> values) {
        const auto best = select_record(name, values);
        if (!best) {
          done(std::nullopt);
          return;
        }
        const pubsub::Topic topic = pubsub_topic(name);
        const auto it = cache_.find(topic);
        if (it == cache_.end() || best->sequence > it->second.sequence)
          cache_[topic] = *best;
        done(best->target());
      });
}

void PubsubResolver::handle_crash() { cache_.clear(); }

void PubsubResolver::handle_restart() {
  // Re-subscribe every followed name; the engine re-grafts meshes on the
  // following heartbeats and the cache refills from fresh broadcasts.
  for (const auto& name : followed_) {
    pubsub_.subscribe(pubsub_topic(name),
                      [this, name](const pubsub::PubsubMessage& message) {
                        accept(name, message);
                      });
  }
}

}  // namespace ipfs::ipns
