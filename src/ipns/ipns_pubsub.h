// IPNS over pubsub (paper Section 2.6): go-ipfs's experimental fast path
// for name resolution. Each name gets its own topic; publishers broadcast
// the signed record to the mesh, and followers cache the highest valid
// sequence they have seen. Resolution then answers from the local cache
// in zero network round-trips, falling back to the quorum DHT walk for
// names the node does not follow (or has not heard yet).
//
// Security model is unchanged from DHT IPNS: records are self-certifying
// (the embedded key must hash to the name and sign the payload), so a
// malicious mesh member cannot forge an update — the worst it can do is
// withhold, which the DHT fallback covers.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "ipns/ipns.h"
#include "pubsub/pubsub.h"

namespace ipfs::ipns {

// The pubsub topic IPNS records for `name` travel on. Mirrors go-ipfs's
// "/record/<base64(/ipns/<name>)>" namespacing, minus the base64.
pubsub::Topic pubsub_topic(const multiformats::PeerId& name);

class PubsubResolver {
 public:
  using ResolveFn = std::function<void(std::optional<multiformats::Cid>)>;

  PubsubResolver(dht::DhtNode& dht, pubsub::Pubsub& pubsub)
      : dht_(dht), pubsub_(pubsub) {}

  // Publishes to both planes: the DHT walk + PUT (authoritative, slow)
  // and a pubsub broadcast (best-effort, fast). `done` reports the DHT
  // outcome; the broadcast has no acknowledgement. The publisher caches
  // its own record, so it also answers local resolves immediately.
  void publish(const crypto::Ed25519KeyPair& keypair,
               const multiformats::Cid& target, std::uint64_t sequence,
               std::function<void(bool ok, int replicas)> done);

  // Subscribes to `name`'s record topic. Every received record is
  // verified against the name before it can touch the cache, and only a
  // higher sequence displaces a cached record.
  void follow(const multiformats::PeerId& name);
  bool following(const multiformats::PeerId& name) const;

  // Cache hit: resolves instantly from the freshest record heard over
  // pubsub. Cache miss: falls back to the quorum DHT walk, seeding the
  // cache with the result.
  void resolve(const multiformats::PeerId& name, ResolveFn done);

  // The freshest verified record heard for `name`, if any.
  std::optional<IpnsRecord> cached(const multiformats::PeerId& name) const;

  // --- Crash/restart -------------------------------------------------------
  // The record cache is soft state and dies with the process; the follow
  // set survives (a real daemon persists its topic list in config) and is
  // re-subscribed on restart. Call after the owning node's pubsub engine
  // has itself been crashed/restarted.
  void handle_crash();
  void handle_restart();

 private:
  void accept(const multiformats::PeerId& name,
              const pubsub::PubsubMessage& message);

  dht::DhtNode& dht_;
  pubsub::Pubsub& pubsub_;
  // Keyed by topic so delivery lookups avoid re-deriving names.
  std::map<pubsub::Topic, IpnsRecord> cache_;
  std::set<multiformats::PeerId> followed_;
};

}  // namespace ipfs::ipns
