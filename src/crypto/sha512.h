// SHA-512 (FIPS 180-4), required by Ed25519 (RFC 8032).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace ipfs::crypto {

using Sha512Digest = std::array<std::uint8_t, 64>;

class Sha512 {
 public:
  Sha512();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);
  Sha512Digest finish();
  void reset();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_{};
  std::array<std::uint8_t, 128> buffer_{};
  std::uint64_t total_bytes_ = 0;  // 2^64 bytes is ample for this codebase
  std::size_t buffered_ = 0;
};

Sha512Digest sha512(std::span<const std::uint8_t> data);
Sha512Digest sha512(std::string_view data);

}  // namespace ipfs::crypto
