#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/sha512.h"

namespace ipfs::crypto {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// ---------------------------------------------------------------------------
// Field arithmetic modulo p = 2^255 - 19, radix 2^51 (5 limbs).
// Limbs are kept below ~2^52 between operations; mul/square fully reduce.
// ---------------------------------------------------------------------------

constexpr u64 kMask51 = (u64{1} << 51) - 1;

struct Fe {
  u64 v[5];
};

constexpr Fe fe_zero() { return {{0, 0, 0, 0, 0}}; }
constexpr Fe fe_one() { return {{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b, offset by 4p so limbs never go negative (inputs < 2^52.5).
Fe fe_sub(const Fe& a, const Fe& b) {
  // 4p in radix 2^51: limb0 = 4*(2^51-19), others = 4*(2^51-1).
  constexpr u64 kFourP0 = 0x1fffffffffffb4ULL;  // 4*(2^51-19) = 2^53 - 76
  constexpr u64 kFourPi = 0x1ffffffffffffcULL;  // 4*(2^51-1)  = 2^53 - 4
  Fe r;
  r.v[0] = a.v[0] + kFourP0 - b.v[0];
  for (int i = 1; i < 5; ++i) r.v[i] = a.v[i] + kFourPi - b.v[i];
  return r;
}

// Carry chain bringing all limbs below 2^51 (+ small epsilon on limb 0).
void fe_carry(Fe& f) {
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      f.v[i + 1] += f.v[i] >> 51;
      f.v[i] &= kMask51;
    }
    f.v[0] += 19 * (f.v[4] >> 51);
    f.v[4] &= kMask51;
  }
}

Fe fe_mul(const Fe& a, const Fe& b) {
  const u64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const u64 b1_19 = 19 * b1, b2_19 = 19 * b2, b3_19 = 19 * b3, b4_19 = 19 * b4;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe r;
  u64 carry;
  r.v[0] = (u64)t0 & kMask51;
  carry = (u64)(t0 >> 51);
  t1 += carry;
  r.v[1] = (u64)t1 & kMask51;
  carry = (u64)(t1 >> 51);
  t2 += carry;
  r.v[2] = (u64)t2 & kMask51;
  carry = (u64)(t2 >> 51);
  t3 += carry;
  r.v[3] = (u64)t3 & kMask51;
  carry = (u64)(t3 >> 51);
  t4 += carry;
  r.v[4] = (u64)t4 & kMask51;
  carry = (u64)(t4 >> 51);
  r.v[0] += 19 * carry;
  r.v[1] += r.v[0] >> 51;
  r.v[0] &= kMask51;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

// Canonical little-endian 32-byte encoding (value fully reduced mod p).
void fe_to_bytes(std::uint8_t out[32], const Fe& in) {
  Fe f = in;
  fe_carry(f);
  // Subtract p if the value is >= p.
  // First fold potential tiny excess on limb 0 once more.
  f.v[1] += f.v[0] >> 51;
  f.v[0] &= kMask51;
  f.v[2] += f.v[1] >> 51;
  f.v[1] &= kMask51;
  f.v[3] += f.v[2] >> 51;
  f.v[2] &= kMask51;
  f.v[4] += f.v[3] >> 51;
  f.v[3] &= kMask51;
  f.v[0] += 19 * (f.v[4] >> 51);
  f.v[4] &= kMask51;

  // Compute f - p; if no borrow, use it.
  u64 t[5];
  t[0] = f.v[0] + 19;
  t[1] = f.v[1] + (t[0] >> 51);
  t[0] &= kMask51;
  t[2] = f.v[2] + (t[1] >> 51);
  t[1] &= kMask51;
  t[3] = f.v[3] + (t[2] >> 51);
  t[2] &= kMask51;
  t[4] = f.v[4] + (t[3] >> 51);
  t[3] &= kMask51;
  // If t[4] has bit 51 set, original value was >= p: keep t (mod 2^255).
  if (t[4] >> 51) {
    t[4] &= kMask51;
    f.v[0] = t[0];
    f.v[1] = t[1];
    f.v[2] = t[2];
    f.v[3] = t[3];
    f.v[4] = t[4];
  }

  u64 lo0 = f.v[0] | (f.v[1] << 51);
  u64 lo1 = (f.v[1] >> 13) | (f.v[2] << 38);
  u64 lo2 = (f.v[2] >> 26) | (f.v[3] << 25);
  u64 lo3 = (f.v[3] >> 39) | (f.v[4] << 12);
  for (int i = 0; i < 8; ++i) out[i] = (std::uint8_t)(lo0 >> (8 * i));
  for (int i = 0; i < 8; ++i) out[8 + i] = (std::uint8_t)(lo1 >> (8 * i));
  for (int i = 0; i < 8; ++i) out[16 + i] = (std::uint8_t)(lo2 >> (8 * i));
  for (int i = 0; i < 8; ++i) out[24 + i] = (std::uint8_t)(lo3 >> (8 * i));
}

Fe fe_from_bytes(const std::uint8_t in[32]) {
  auto load64 = [](const std::uint8_t* p) {
    u64 v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  };
  const u64 x0 = load64(in);
  const u64 x1 = load64(in + 8);
  const u64 x2 = load64(in + 16);
  const u64 x3 = load64(in + 24);
  Fe r;
  r.v[0] = x0 & kMask51;
  r.v[1] = ((x0 >> 51) | (x1 << 13)) & kMask51;
  r.v[2] = ((x1 >> 38) | (x2 << 26)) & kMask51;
  r.v[3] = ((x2 >> 25) | (x3 << 39)) & kMask51;
  r.v[4] = (x3 >> 12) & kMask51;  // drops the sign bit, per RFC 8032
  return r;
}

bool fe_is_zero(const Fe& a) {
  std::uint8_t bytes[32];
  fe_to_bytes(bytes, a);
  std::uint8_t acc = 0;
  for (auto b : bytes) acc |= b;
  return acc == 0;
}

bool fe_is_negative(const Fe& a) {
  std::uint8_t bytes[32];
  fe_to_bytes(bytes, a);
  return bytes[0] & 1;
}

bool fe_equal(const Fe& a, const Fe& b) { return fe_is_zero(fe_sub(a, b)); }

// Generic square-and-multiply with a little-endian exponent.
Fe fe_pow(const Fe& base, const std::uint8_t exp_le[32]) {
  Fe result = fe_one();
  for (int bit = 254; bit >= 0; --bit) {
    result = fe_sq(result);
    if ((exp_le[bit / 8] >> (bit % 8)) & 1) result = fe_mul(result, base);
  }
  return result;
}

Fe fe_invert(const Fe& a) {
  // p - 2 = 2^255 - 21: little-endian 0xeb, 0xff * 30, 0x7f.
  std::uint8_t exp[32];
  std::memset(exp, 0xff, sizeof(exp));
  exp[0] = 0xeb;
  exp[31] = 0x7f;
  return fe_pow(a, exp);
}

Fe fe_pow2523(const Fe& a) {
  // (p - 5) / 8 = 2^252 - 3: little-endian 0xfd, 0xff * 30, 0x0f.
  std::uint8_t exp[32];
  std::memset(exp, 0xff, sizeof(exp));
  exp[0] = 0xfd;
  exp[31] = 0x0f;
  return fe_pow(a, exp);
}

// ---------------------------------------------------------------------------
// Curve constants, computed once (and cross-checked by RFC test vectors).
// ---------------------------------------------------------------------------

struct CurveConstants {
  Fe d;         // -121665/121666
  Fe d2;        // 2*d
  Fe sqrt_m1;   // sqrt(-1) = 2^((p-1)/4)
};

const CurveConstants& constants() {
  static const CurveConstants c = [] {
    CurveConstants out;
    Fe n121665 = {{121665, 0, 0, 0, 0}};
    Fe n121666 = {{121666, 0, 0, 0, 0}};
    out.d = fe_mul(fe_neg(n121665), fe_invert(n121666));
    out.d2 = fe_add(out.d, out.d);
    // sqrt(-1) = 2^((p-1)/4); exponent (p-1)/4 = 2^253 - 5.
    std::uint8_t exp[32];
    std::memset(exp, 0xff, sizeof(exp));
    exp[0] = 0xfb;
    exp[31] = 0x1f;
    Fe two = {{2, 0, 0, 0, 0}};
    out.sqrt_m1 = fe_pow(two, exp);
    return out;
  }();
  return c;
}

// ---------------------------------------------------------------------------
// Group element in extended homogeneous coordinates (X:Y:Z:T), x = X/Z,
// y = Y/Z, x*y = T/Z. Formulas from RFC 8032 section 5.1.4.
// ---------------------------------------------------------------------------

struct Ge {
  Fe x, y, z, t;
};

Ge ge_identity() { return {fe_zero(), fe_one(), fe_one(), fe_zero()}; }

Ge ge_add(const Ge& p, const Ge& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const Fe c = fe_mul(fe_mul(p.t, constants().d2), q.t);
  const Fe d = fe_mul(fe_add(p.z, p.z), q.z);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  return {fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Ge ge_double(const Ge& p) {
  const Fe a = fe_sq(p.x);
  const Fe b = fe_sq(p.y);
  const Fe c = fe_add(fe_sq(p.z), fe_sq(p.z));
  const Fe h = fe_add(a, b);
  const Fe xy = fe_add(p.x, p.y);
  const Fe e = fe_sub(h, fe_sq(xy));
  const Fe g = fe_sub(a, b);
  const Fe f = fe_add(c, g);
  return {fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Ge ge_neg(const Ge& p) { return {fe_neg(p.x), p.y, p.z, fe_neg(p.t)}; }

// Plain double-and-add; variable time is fine inside the simulator.
Ge ge_scalarmult(const std::uint8_t scalar_le[32], const Ge& p) {
  Ge r = ge_identity();
  for (int bit = 255; bit >= 0; --bit) {
    r = ge_double(r);
    if ((scalar_le[bit / 8] >> (bit % 8)) & 1) r = ge_add(r, p);
  }
  return r;
}

void ge_to_bytes(std::uint8_t out[32], const Ge& p) {
  const Fe zi = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zi);
  const Fe y = fe_mul(p.y, zi);
  fe_to_bytes(out, y);
  if (fe_is_negative(x)) out[31] |= 0x80;
}

// Decompression per RFC 8032 section 5.1.3. Returns nullopt for invalid
// encodings (no square root, or x=0 with sign bit set).
std::optional<Ge> ge_from_bytes(const std::uint8_t in[32]) {
  const int sign = in[31] >> 7;
  const Fe y = fe_from_bytes(in);

  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());
  const Fe v = fe_add(fe_mul(constants().d, y2), fe_one());

  // Candidate root x = u * v^3 * (u * v^7)^((p-5)/8).
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow2523(fe_mul(u, v7)));

  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_equal(vx2, u)) {
    if (fe_equal(vx2, fe_neg(u))) {
      x = fe_mul(x, constants().sqrt_m1);
    } else {
      return std::nullopt;
    }
  }

  if (fe_is_zero(x) && sign == 1) return std::nullopt;
  if (fe_is_negative(x) != (sign == 1)) x = fe_neg(x);

  Ge p;
  p.x = x;
  p.y = y;
  p.z = fe_one();
  p.t = fe_mul(x, y);
  return p;
}

const Ge& base_point() {
  static const Ge b = [] {
    // B has y = 4/5 and even ("positive") x, so sign bit 0.
    Fe four = {{4, 0, 0, 0, 0}};
    Fe five = {{5, 0, 0, 0, 0}};
    const Fe y = fe_mul(four, fe_invert(five));
    std::uint8_t enc[32];
    fe_to_bytes(enc, y);
    auto p = ge_from_bytes(enc);
    return *p;
  }();
  return b;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic modulo the group order
// L = 2^252 + 27742317777372353535851937790883648493.
// Simple bignum long-reduction; performance is irrelevant here.
// ---------------------------------------------------------------------------

// L as little-endian u64 limbs.
constexpr u64 kOrder[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0ULL,
                           0x1000000000000000ULL};

struct Scalar256 {
  u64 v[4] = {0, 0, 0, 0};
};

bool scalar_gte_order(const Scalar256& a) {
  for (int i = 3; i >= 0; --i) {
    if (a.v[i] > kOrder[i]) return true;
    if (a.v[i] < kOrder[i]) return false;
  }
  return true;  // equal
}

void scalar_sub_order(Scalar256& a) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 sub = kOrder[i] + borrow;
    borrow = (a.v[i] < sub || (borrow && kOrder[i] == ~u64{0})) ? 1 : 0;
    a.v[i] -= sub;
  }
}

// Reduces an up-to-512-bit little-endian value modulo L by scanning bits
// from the top: r = 2r + bit, subtract L on overflow past it.
Scalar256 scalar_mod_order(std::span<const std::uint8_t> le_bytes) {
  Scalar256 r;
  for (int bit = static_cast<int>(le_bytes.size()) * 8 - 1; bit >= 0; --bit) {
    // r <<= 1 (r < L < 2^253, so this cannot overflow 256 bits).
    u64 carry = 0;
    for (int i = 0; i < 4; ++i) {
      const u64 next_carry = r.v[i] >> 63;
      r.v[i] = (r.v[i] << 1) | carry;
      carry = next_carry;
    }
    const int byte = bit / 8;
    if ((le_bytes[byte] >> (bit % 8)) & 1) {
      // r += 1
      for (int i = 0; i < 4 && ++r.v[i] == 0; ++i) {
      }
    }
    if (scalar_gte_order(r)) scalar_sub_order(r);
  }
  return r;
}

void scalar_to_bytes(std::uint8_t out[32], const Scalar256& s) {
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j)
      out[8 * i + j] = (std::uint8_t)(s.v[i] >> (8 * j));
}

// (a*b + c) mod L, all inputs 32-byte little-endian scalars.
Scalar256 scalar_muladd(const std::uint8_t a[32], const std::uint8_t b[32],
                        const std::uint8_t c[32]) {
  // Schoolbook 256x256 -> 512 bit multiply over 8 u64 limbs.
  u64 al[4], bl[4];
  for (int i = 0; i < 4; ++i) {
    al[i] = 0;
    bl[i] = 0;
    for (int j = 7; j >= 0; --j) {
      al[i] = (al[i] << 8) | a[8 * i + j];
      bl[i] = (bl[i] << 8) | b[8 * i + j];
    }
  }
  u64 prod[8] = {0};
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 t = (u128)al[i] * bl[j] + prod[i + j] + carry;
      prod[i + j] = (u64)t;
      carry = (u64)(t >> 64);
    }
    prod[i + 4] += carry;
  }
  // Add c.
  u64 carry = 0;
  for (int i = 0; i < 8; ++i) {
    u64 limb = (i < 4) ? [&] {
      u64 cl = 0;
      for (int j = 7; j >= 0; --j) cl = (cl << 8) | c[8 * i + j];
      return cl;
    }()
                       : 0;
    const u128 t = (u128)prod[i] + limb + carry;
    prod[i] = (u64)t;
    carry = (u64)(t >> 64);
  }
  std::uint8_t wide[64];
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      wide[8 * i + j] = (std::uint8_t)(prod[i] >> (8 * j));
  return scalar_mod_order(wide);
}

void clamp(std::uint8_t scalar[32]) {
  scalar[0] &= 248;
  scalar[31] &= 127;
  scalar[31] |= 64;
}

}  // namespace

Ed25519KeyPair ed25519_keypair(const Ed25519Seed& seed) {
  const Sha512Digest h = sha512(std::span<const std::uint8_t>(seed));
  std::uint8_t s[32];
  std::memcpy(s, h.data(), 32);
  clamp(s);
  const Ge a = ge_scalarmult(s, base_point());
  Ed25519KeyPair kp;
  kp.seed = seed;
  ge_to_bytes(kp.public_key.data(), a);
  return kp;
}

Ed25519Signature ed25519_sign(const Ed25519KeyPair& key,
                              std::span<const std::uint8_t> message) {
  const Sha512Digest h = sha512(std::span<const std::uint8_t>(key.seed));
  std::uint8_t s[32];
  std::memcpy(s, h.data(), 32);
  clamp(s);

  // r = SHA512(prefix || M) mod L
  Sha512 rctx;
  rctx.update(std::span<const std::uint8_t>(h.data() + 32, 32));
  rctx.update(message);
  const Sha512Digest r_wide = rctx.finish();
  const Scalar256 r = scalar_mod_order(r_wide);
  std::uint8_t r_bytes[32];
  scalar_to_bytes(r_bytes, r);

  const Ge r_point = ge_scalarmult(r_bytes, base_point());
  Ed25519Signature sig{};
  ge_to_bytes(sig.data(), r_point);

  // k = SHA512(R || A || M) mod L
  Sha512 kctx;
  kctx.update(std::span<const std::uint8_t>(sig.data(), 32));
  kctx.update(std::span<const std::uint8_t>(key.public_key));
  kctx.update(message);
  const Sha512Digest k_wide = kctx.finish();
  const Scalar256 k = scalar_mod_order(k_wide);
  std::uint8_t k_bytes[32];
  scalar_to_bytes(k_bytes, k);

  // S = (r + k*s) mod L
  const Scalar256 big_s = scalar_muladd(k_bytes, s, r_bytes);
  scalar_to_bytes(sig.data() + 32, big_s);
  return sig;
}

bool ed25519_verify(const Ed25519PublicKey& public_key,
                    std::span<const std::uint8_t> message,
                    const Ed25519Signature& signature) {
  // Reject S >= L (strict / non-malleable verification).
  Scalar256 s_val;
  for (int i = 0; i < 4; ++i)
    for (int j = 7; j >= 0; --j)
      s_val.v[i] = (s_val.v[i] << 8) | signature[32 + 8 * i + j];
  if (scalar_gte_order(s_val)) return false;

  const auto a = ge_from_bytes(public_key.data());
  if (!a) return false;

  Sha512 kctx;
  kctx.update(std::span<const std::uint8_t>(signature.data(), 32));
  kctx.update(std::span<const std::uint8_t>(public_key));
  kctx.update(message);
  const Scalar256 k = scalar_mod_order(kctx.finish());
  std::uint8_t k_bytes[32];
  scalar_to_bytes(k_bytes, k);

  // Check s*B == R + k*A  <=>  R == s*B + k*(-A).
  std::uint8_t s_bytes[32];
  std::memcpy(s_bytes, signature.data() + 32, 32);
  const Ge sb = ge_scalarmult(s_bytes, base_point());
  const Ge ka = ge_scalarmult(k_bytes, ge_neg(*a));
  const Ge r_check = ge_add(sb, ka);

  std::uint8_t r_bytes[32];
  ge_to_bytes(r_bytes, r_check);
  return std::memcmp(r_bytes, signature.data(), 32) == 0;
}

}  // namespace ipfs::crypto
