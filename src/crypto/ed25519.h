// Ed25519 signatures (RFC 8032), implemented from scratch on a 51-bit-limb
// curve25519 field. PeerIDs hash Ed25519 public keys; IPNS records are
// signed with the corresponding private keys.
//
// This implementation favours clarity over speed and is NOT constant-time;
// inside the simulator there is no side channel to defend against.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ipfs::crypto {

using Ed25519Seed = std::array<std::uint8_t, 32>;        // RFC 8032 private key
using Ed25519PublicKey = std::array<std::uint8_t, 32>;   // compressed point A
using Ed25519Signature = std::array<std::uint8_t, 64>;   // R || S

struct Ed25519KeyPair {
  Ed25519Seed seed;
  Ed25519PublicKey public_key;
};

// Derives the public key for a 32-byte seed (deterministic).
Ed25519KeyPair ed25519_keypair(const Ed25519Seed& seed);

Ed25519Signature ed25519_sign(const Ed25519KeyPair& key,
                              std::span<const std::uint8_t> message);

// Strict verification: rejects non-canonical S (S >= L) and undecodable
// points. Returns true iff the signature is valid for (public_key, message).
bool ed25519_verify(const Ed25519PublicKey& public_key,
                    std::span<const std::uint8_t> message,
                    const Ed25519Signature& signature);

}  // namespace ipfs::crypto
