// SHA-256 (FIPS 180-4). CIDs and DHT keys hash through this implementation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ipfs::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

// Incremental SHA-256 context. Usable for streaming inputs (chunked files)
// as well as one-shot hashing via the free function below.
class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  // Finalizes and returns the digest. The context must not be reused
  // afterwards without calling reset().
  Sha256Digest finish();

  void reset();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

Sha256Digest sha256(std::span<const std::uint8_t> data);
Sha256Digest sha256(std::string_view data);

// Hex rendering used by tests and debug output.
std::string to_hex(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace ipfs::crypto
