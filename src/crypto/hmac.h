// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
#pragma once

#include <span>

#include "crypto/sha256.h"

namespace ipfs::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> message);

}  // namespace ipfs::crypto
