#include "gateway/gateway.h"

#include "merkledag/merkledag.h"
#include "merkledag/unixfs.h"

namespace ipfs::gateway {

Gateway::Gateway(transport::Transport& transport, const GatewayConfig& config)
    : config_(config),
      node_(transport, config.node),
      transport_(node_.transport()),
      nginx_cache_(config.nginx_cache_bytes, config.edge_cache) {}

Gateway::Gateway(sim::Network& network, const GatewayConfig& config)
    : config_(config),
      node_(network, config.node),
      transport_(node_.transport()),
      nginx_cache_(config.nginx_cache_bytes, config.edge_cache) {}

void Gateway::bootstrap(std::vector<dht::PeerRef> seeds,
                        std::function<void(bool)> done) {
  node_.bootstrap(std::move(seeds), std::move(done));
}

void Gateway::pin_object(std::span<const std::uint8_t> data) {
  const auto result = merkledag::import_bytes(node_.store(), data);
  node_.store().pin(result.root);
}

namespace {

const char* tier_name(ServedFrom source) {
  switch (source) {
    case ServedFrom::kNginxCache:
      return "nginx_cache";
    case ServedFrom::kNodeStore:
      return "node_store";
    case ServedFrom::kOriginCache:
      return "origin_cache";
    case ServedFrom::kP2p:
      return "p2p";
    case ServedFrom::kFailed:
      return "failed";
  }
  return "failed";
}

}  // namespace

TierStats& Gateway::stats_for(ServedFrom source) {
  switch (source) {
    case ServedFrom::kNginxCache:
      return nginx_stats_;
    case ServedFrom::kNodeStore:
      return node_store_stats_;
    case ServedFrom::kOriginCache:
      return origin_stats_;
    case ServedFrom::kP2p:
      return p2p_stats_;
    case ServedFrom::kFailed:
      return failed_stats_;
  }
  return failed_stats_;
}

const TierStats& Gateway::stats(ServedFrom source) const {
  return const_cast<Gateway*>(this)->stats_for(source);
}

void Gateway::account(const Cid& cid, const GatewayResponse& response) {
  ++total_requests_;
  TierStats& tier = stats_for(response.source);
  ++tier.requests;
  tier.bytes += response.bytes;

  metrics::Registry& metrics = transport_.metrics();
  const std::string name = tier_name(response.source);
  metrics.counter("gateway.requests").inc();
  metrics.counter("gateway.tier." + name + ".requests").inc();
  metrics.counter("gateway.tier." + name + ".bytes").inc(response.bytes);
  metrics.histogram("gateway.latency." + name)
      .record(response.latency);
  metrics.instant("gateway.served." + name, node_.node(), cid.to_string(),
                  response.bytes);
  // Fleet replicas additionally label their counters so the registry
  // keeps per-replica tier shares (docs/OBSERVABILITY.md).
  if (!config_.metrics_label.empty()) {
    const std::string prefix = "gateway." + config_.metrics_label + ".";
    metrics.counter(prefix + "requests").inc();
    metrics.counter(prefix + "tier." + name + ".requests").inc();
    metrics.counter(prefix + "tier." + name + ".bytes").inc(response.bytes);
  }
  // P2P-tier requests additionally record which routing path served them
  // (the indexer-vs-DHT split of the bridge's upstream traffic).
  if (response.source == ServedFrom::kP2p) {
    metrics
        .counter(std::string("gateway.routing.") +
                 routing::source_name(response.routing_source))
        .inc();
  }
}

void Gateway::persist_origin_blocks(const Cid& cid) {
  if (!config_.origin_persist) return;
  const auto cids = merkledag::enumerate(node_.store(), cid);
  if (!cids) return;
  std::uint64_t stored = 0;
  std::uint64_t stored_bytes = 0;
  for (const auto& block_cid : *cids) {
    if (const auto data = node_.store().get(block_cid)) {
      if (config_.origin_persist->put(block_cid, data) ==
          blockstore::PutStatus::kStored) {
        ++stored;
        stored_bytes += data->size();
      }
    }
  }
  if (stored > 0) {
    metrics::Registry& metrics = transport_.metrics();
    metrics.counter("gateway.origin.persist_stores").inc(stored);
    metrics.counter("gateway.origin.persist_stored_bytes").inc(stored_bytes);
  }
}

void Gateway::handle_get(const Cid& cid,
                         std::function<void(GatewayResponse)> done) {
  serve(cid, /*account_tier=*/true, std::move(done));
}

void Gateway::serve(const Cid& cid, bool account_tier,
                    std::function<void(GatewayResponse)> done) {
  // Tier 1: nginx-style edge cache. The hit hands back the shared
  // payload — O(1), no copy of the object bytes.
  if (const auto cached = nginx_cache_.get(cid)) {
    GatewayResponse response;
    response.source = ServedFrom::kNginxCache;
    response.latency = config_.nginx_hit_latency;
    response.bytes = cached->size();
    if (account_tier) account(cid, response);
    transport_.schedule_after(
        response.latency, [response, done = std::move(done)] {
          done(response);
        });
    return;
  }

  // Tier 2: the co-located IPFS node's store (pinned content).
  if (auto local = merkledag::cat(node_.store(), cid)) {
    GatewayResponse response;
    response.source = ServedFrom::kNodeStore;
    response.bytes = local->size();
    response.latency =
        config_.node_store_base_latency +
        sim::seconds(static_cast<double>(local->size()) /
                     config_.node_store_bytes_per_sec);
    if (account_tier) account(cid, response);
    auto shared = std::make_shared<const std::vector<std::uint8_t>>(
        std::move(*local));
    nginx_cache_.put(cid, shared);
    // Write through to the shared origin so spilled requests for this
    // replica's pinned partition stay inside the fleet.
    if (config_.origin) config_.origin->put(cid, shared);
    persist_origin_blocks(cid);
    transport_.schedule_after(
        response.latency, [response, done = std::move(done)] {
          done(response);
        });
    return;
  }

  // Tier 3: the fleet's shared origin cache (replicas only).
  if (config_.origin) {
    if (const auto shared = config_.origin->get(cid)) {
      GatewayResponse response;
      response.source = ServedFrom::kOriginCache;
      response.bytes = shared->size();
      response.latency =
          config_.origin_hit_latency +
          sim::seconds(static_cast<double>(shared->size()) /
                       config_.origin_bytes_per_sec);
      if (account_tier) account(cid, response);
      nginx_cache_.put(cid, shared);  // aliases the origin's payload
      transport_.schedule_after(
          response.latency, [response, done = std::move(done)] {
            done(response);
          });
      return;
    }
  }

  // Tier 3b: the durable origin store. Its blocks survive origin-cache
  // evictions and fleet restarts; a hit reassembles the object and
  // repopulates the RAM tiers above it. Accounted as the origin tier
  // (sum over tiers still equals total_requests()), with separate
  // gateway.origin.persist_* counters for the durable share.
  if (config_.origin_persist) {
    if (auto object = merkledag::cat(*config_.origin_persist, cid)) {
      GatewayResponse response;
      response.source = ServedFrom::kOriginCache;
      response.bytes = object->size();
      response.latency =
          config_.origin_persist_hit_latency +
          sim::seconds(static_cast<double>(object->size()) /
                       config_.origin_persist_bytes_per_sec);
      if (account_tier) account(cid, response);
      metrics::Registry& metrics = transport_.metrics();
      metrics.counter("gateway.origin.persist_hits").inc();
      metrics.counter("gateway.origin.persist_bytes").inc(response.bytes);
      auto shared = std::make_shared<const std::vector<std::uint8_t>>(
          std::move(*object));
      nginx_cache_.put(cid, shared);
      if (config_.origin) config_.origin->put(cid, shared);
      transport_.schedule_after(
          response.latency, [response, done = std::move(done)] {
            done(response);
          });
      return;
    }
  }

  // Negative-result cache: a recent failed retrieval of this CID means
  // a repeat crowd gets its typed failure in edge-cache time instead of
  // re-paying the doomed pipeline (the dead-CID stampede fix).
  if (config_.negative_ttl > 0) {
    const auto negative = negative_until_.find(cid);
    if (negative != negative_until_.end()) {
      if (transport_.now() < negative->second) {
        ++negative_hits_;
        transport_.metrics().counter("gateway.negative.hits").inc();
        GatewayResponse response;
        response.source = ServedFrom::kFailed;
        response.latency = config_.nginx_hit_latency;
        if (account_tier) account(cid, response);
        transport_.schedule_after(
            response.latency, [response, done = std::move(done)] {
              done(response);
            });
        return;
      }
      negative_until_.erase(negative);  // expired: retry the full path
    }
  }

  // Tier 4: the P2P network, via the full retrieval pipeline. Concurrent
  // misses for the same CID coalesce onto one in-flight retrieval
  // (singleflight): a flash crowd of requests costs the upstream exactly
  // one DHT walk and one fetch, and every waiter is answered — and
  // accounted — from the shared completion.
  const auto [it, leader] = inflight_.try_emplace(cid);
  it->second.push_back(
      Waiter{account_tier, transport_.now(), std::move(done)});
  if (!leader) {
    ++coalesced_requests_;
    transport_.metrics().counter("gateway.p2p.coalesced").inc();
    return;
  }
  node_.retrieve(cid, [this, cid](node::RetrievalTrace trace) {
    std::vector<Waiter> waiters;
    if (const auto entry = inflight_.find(cid); entry != inflight_.end()) {
      waiters = std::move(entry->second);
      inflight_.erase(entry);
    }
    const sim::Time end = transport_.now();
    GatewayResponse response;
    if (!trace.ok) {
      response.source = ServedFrom::kFailed;
      if (config_.negative_ttl > 0) {
        negative_until_[cid] = end + config_.negative_ttl;
        transport_.metrics().counter("gateway.negative.stores").inc();
      }
    } else {
      response.source = ServedFrom::kP2p;
      response.routing_source = trace.routing_source;
      // The bridge node serves millions of CIDs from ever-changing
      // providers; its connection manager churns through connections far
      // faster than our handful of simulated hosts would suggest. Drop the
      // provider connection so the next miss pays the full pipeline, as
      // the paper's non-cached tier does (Table 5: 4.04 s median).
      if (trace.provider_node != sim::kInvalidNode)
        node_.disconnect_from(trace.provider_node);
      auto bytes = merkledag::cat(node_.store(), cid);
      response.bytes = bytes ? bytes->size() : trace.bytes;
      if (bytes) {
        auto shared = std::make_shared<const std::vector<std::uint8_t>>(
            std::move(*bytes));
        nginx_cache_.put(cid, shared);
        if (config_.origin) config_.origin->put(cid, shared);
        persist_origin_blocks(cid);
        // The bridge node keeps fetched blocks only transiently; drop them
        // so the node store tier stays the pinned-content tier.
        if (!node_.store().pinned(cid)) {
          if (const auto cids = merkledag::enumerate(node_.store(), cid)) {
            for (const auto& block_cid : *cids) node_.store().remove(block_cid);
          }
        }
      }
    }
    for (auto& waiter : waiters) {
      GatewayResponse out = response;
      // Each waiter saw its own wait: completion minus its arrival (for
      // the leader this equals trace.total).
      out.latency = end - waiter.start;
      if (waiter.account_tier) account(cid, out);
      waiter.done(out);
    }
  });
}


std::optional<std::pair<Cid, std::string>> Gateway::parse_url_path(
    std::string_view url_path) {
  constexpr std::string_view kPrefix = "/ipfs/";
  if (!url_path.starts_with(kPrefix)) return std::nullopt;
  url_path.remove_prefix(kPrefix.size());
  const std::size_t slash = url_path.find('/');
  const std::string_view cid_text = url_path.substr(0, slash);
  const auto cid = Cid::parse(cid_text);
  if (!cid) return std::nullopt;
  std::string rest;
  if (slash != std::string_view::npos)
    rest = std::string(url_path.substr(slash + 1));
  return std::make_pair(*cid, std::move(rest));
}

void Gateway::handle_get_path(const Cid& root, const std::string& path,
                              std::function<void(GatewayResponse)> done) {
  if (path.empty()) {
    handle_get(root, std::move(done));
    return;
  }

  // Resolution against local content (pinned trees).
  if (const auto target = merkledag::resolve_path(node_.store(), root, path)) {
    handle_get(*target, std::move(done));
    return;
  }

  // Fetch the tree from the network, then resolve and serve. The whole
  // request paid the P2P pipeline, so it is accounted exactly once, as a
  // kP2p (or kFailed) request — serve() runs unaccounted and the final,
  // rewritten response is what lands in the stats.
  node_.retrieve(root, [this, root, path, done = std::move(done)](
                           node::RetrievalTrace trace) {
    GatewayResponse failure;
    failure.source = ServedFrom::kFailed;
    failure.latency = trace.total;
    if (!trace.ok) {
      account(root, failure);
      done(failure);
      return;
    }
    const auto target = merkledag::resolve_path(node_.store(), root, path);
    if (!target) {
      account(root, failure);
      done(failure);  // 404: no such path below the root
      return;
    }
    // Serve the resolved file; it is in the bridge store right now, so
    // the response carries the file's bytes plus the P2P latency we just
    // paid.
    serve(*target, /*account_tier=*/false,
          [this, root, trace, done = std::move(done)](
              GatewayResponse response) {
            if (response.source != ServedFrom::kFailed) {
              response.source = ServedFrom::kP2p;
              response.routing_source = trace.routing_source;
            }
            response.latency += trace.total;
            // Transient blocks are dropped as in handle_get's P2P path.
            if (!node_.store().pinned(root)) {
              if (const auto cids =
                      merkledag::enumerate(node_.store(), root)) {
                for (const auto& cid : *cids) node_.store().remove(cid);
              }
            }
            account(root, response);
            done(response);
          });
  });
}

}  // namespace ipfs::gateway
