#include "gateway/fleet.h"

#include <string>

#include "merkledag/merkledag.h"

namespace ipfs::gateway {

GatewayFleet::GatewayFleet(sim::Network& network, const FleetConfig& config)
    : network_(network),
      config_(config),
      origin_(std::make_shared<blockstore::LruBlockStore>(
          config.origin_cache_bytes, config.origin_cache)),
      ring_(HashRingConfig{config.vnodes, config.bounded_load_factor}),
      inflight_(config.replicas, 0) {
  replicas_.reserve(config_.replicas);
  for (std::size_t i = 0; i < config_.replicas; ++i) {
    GatewayConfig replica = config_.replica;
    replica.metrics_label = "r" + std::to_string(i);
    replica.origin = origin_;
    replica.origin_persist = config_.origin_persist;
    // Replicas share the template but must not share a node identity.
    replica.node.identity_seed ^= 0x9e3779b97f4a7c15ULL * (i + 1);
    replica.edge_cache.tinylfu = config_.edge_tinylfu;
    replica.edge_cache.sketch_entries = config_.edge_sketch_entries;
    replicas_.push_back(std::make_unique<Gateway>(network_, replica));
    ring_.add_replica(i);
  }
}

void GatewayFleet::bootstrap(std::vector<dht::PeerRef> seeds,
                             std::function<void(bool)> done) {
  // Shared completion state: done(all_ok) fires after the last replica.
  auto pending = std::make_shared<std::size_t>(replicas_.size());
  auto all_ok = std::make_shared<bool>(true);
  auto shared_done = std::make_shared<std::function<void(bool)>>(std::move(done));
  if (*pending == 0) {
    (*shared_done)(true);
    return;
  }
  for (auto& replica : replicas_) {
    replica->bootstrap(seeds, [pending, all_ok, shared_done](bool ok) {
      if (!ok) *all_ok = false;
      if (--*pending == 0) (*shared_done)(*all_ok);
    });
  }
}

Cid GatewayFleet::pin_object(std::span<const std::uint8_t> data) {
  // Import into a scratch store first: the root CID decides which
  // replica's node pins the object, so the partition follows the ring.
  blockstore::BlockStore scratch;
  const Cid root = merkledag::import_bytes(scratch, data).root;
  std::size_t target = 0;
  if (const auto owner = ring_.owner(blockstore::cid_hash64(root)))
    target = *owner;
  replicas_[target]->pin_object(data);
  return root;
}

std::optional<std::size_t> GatewayFleet::route(const Cid& cid) const {
  return ring_.pick(
      blockstore::cid_hash64(cid),
      [this](std::size_t replica) { return inflight_[replica]; },
      total_inflight_);
}

void GatewayFleet::handle_get(const Cid& cid,
                              std::function<void(GatewayResponse)> done) {
  metrics::Registry& metrics = network_.metrics();
  metrics.counter("gateway.fleet.requests").inc();
  const std::uint64_t key = blockstore::cid_hash64(cid);
  const auto picked = ring_.pick(
      key, [this](std::size_t replica) { return inflight_[replica]; },
      total_inflight_);
  if (!picked) {
    // No routable replica (all drained): typed failure, nothing served.
    GatewayResponse response;
    response.source = ServedFrom::kFailed;
    network_.schedule_after(
        0, [response, done = std::move(done)] { done(response); });
    return;
  }
  const std::size_t replica = *picked;
  if (const auto owner = ring_.owner(key); owner && *owner != replica) {
    ++routed_spills_;
    metrics.counter("gateway.fleet.spills").inc();
  }
  ++inflight_[replica];
  ++total_inflight_;
  replicas_[replica]->handle_get(
      cid, [this, replica, done = std::move(done)](GatewayResponse response) {
        --inflight_[replica];
        --total_inflight_;
        done(response);
      });
}

void GatewayFleet::remove_replica(std::size_t index) {
  ring_.remove_replica(index);
}

void GatewayFleet::add_replica(std::size_t index) {
  if (index < replicas_.size()) ring_.add_replica(index);
}

TierStats GatewayFleet::aggregate(ServedFrom source) const {
  TierStats sum;
  for (const auto& replica : replicas_) {
    const TierStats& stats = replica->stats(source);
    sum.requests += stats.requests;
    sum.bytes += stats.bytes;
  }
  return sum;
}

std::uint64_t GatewayFleet::total_requests() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->total_requests();
  return total;
}

double GatewayFleet::fleet_absorbed_share() const {
  const std::uint64_t absorbed = aggregate(ServedFrom::kNginxCache).requests +
                                 aggregate(ServedFrom::kNodeStore).requests +
                                 aggregate(ServedFrom::kOriginCache).requests;
  const std::uint64_t completed = absorbed + aggregate(ServedFrom::kP2p).requests;
  if (completed == 0) return 0.0;
  return static_cast<double>(absorbed) / static_cast<double>(completed);
}

}  // namespace ipfs::gateway
