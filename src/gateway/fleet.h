// Gateway fleet (docs/GATEWAY.md): the ipfs.io deployment model scaled
// out. N Gateway replicas sit behind a consistent-hash front end; each
// keeps its own nginx-style edge cache (TinyLFU-admitted segmented LRU)
// and all share one origin cache, so a miss on one replica's edge is
// answered from fleet storage before the P2P network is asked. The
// fleet_absorbed_share() metric — requests served inside the fleet vs
// forwarded upstream — is the centralization measure of Balduf et al.
#pragma once

#include <memory>
#include <vector>

#include "gateway/gateway.h"
#include "gateway/hash_ring.h"

namespace ipfs::gateway {

struct FleetConfig {
  std::size_t replicas = 4;
  // Template for every replica; the fleet fills in per-replica pieces
  // (metrics_label "r<i>", the shared origin handle, TinyLFU admission).
  GatewayConfig replica;
  // Request-router knobs (hash_ring.h).
  std::size_t vnodes = 64;
  double bounded_load_factor = 1.25;
  // Replicas' edge caches run TinyLFU admission unless disabled.
  bool edge_tinylfu = true;
  std::size_t edge_sketch_entries = 4096;
  // Shared origin tier, sized like a mid-tier object store.
  std::uint64_t origin_cache_bytes = 256ull * 1024 * 1024;
  blockstore::LruConfig origin_cache;
  // Durable origin tier shared by every replica (gateway.h:
  // GatewayConfig::origin_persist). Construct with blockstore::make_store
  // and hand it in; null keeps the fleet RAM-only.
  std::shared_ptr<blockstore::BlockStore> origin_persist;
};

class GatewayFleet {
 public:
  GatewayFleet(sim::Network& network, const FleetConfig& config);

  // Bootstraps every replica's node; done(true) once all joined.
  void bootstrap(std::vector<dht::PeerRef> seeds,
                 std::function<void(bool)> done);

  // Pins an object on its ring owner (the Web3/NFT Storage path) and
  // returns the root CID it is addressed by.
  Cid pin_object(std::span<const std::uint8_t> data);

  // Front-end GET: bounded-load consistent-hash routes to a replica.
  void handle_get(const Cid& cid, std::function<void(GatewayResponse)> done);

  // The replica handle_get would route to right now (no load mutation);
  // exposed for rebalance measurements and tests.
  std::optional<std::size_t> route(const Cid& cid) const;

  // Drains a replica out of / back into the router. The Gateway object
  // stays alive (its caches keep their contents), it just stops/starts
  // receiving routed traffic — the rolling-restart model.
  void remove_replica(std::size_t index);
  void add_replica(std::size_t index);

  std::size_t replica_count() const { return replicas_.size(); }
  Gateway& replica(std::size_t index) { return *replicas_[index]; }
  const Gateway& replica(std::size_t index) const { return *replicas_[index]; }
  blockstore::LruBlockStore& origin() { return *origin_; }
  const HashRing& ring() const { return ring_; }
  std::uint64_t inflight(std::size_t index) const { return inflight_[index]; }
  // Requests the bounded-load walk sent somewhere other than the ring
  // owner (the spill count).
  std::uint64_t routed_spills() const { return routed_spills_; }

  // Fleet-wide tier aggregates (sum over replicas).
  TierStats aggregate(ServedFrom source) const;
  std::uint64_t total_requests() const;
  // Share of completed requests absorbed by fleet storage (edge cache +
  // node store + origin cache) rather than the P2P network.
  double fleet_absorbed_share() const;

 private:
  sim::Network& network_;
  FleetConfig config_;
  std::shared_ptr<blockstore::LruBlockStore> origin_;
  std::vector<std::unique_ptr<Gateway>> replicas_;
  HashRing ring_;
  std::vector<std::uint64_t> inflight_;  // routed requests in flight
  std::uint64_t total_inflight_ = 0;
  std::uint64_t routed_spills_ = 0;
};

}  // namespace ipfs::gateway
