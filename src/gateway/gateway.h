// IPFS HTTP gateway (paper Section 3.4): a bridge between plain HTTP
// clients and the P2P network. Requests traverse the serving tiers:
//
//   1. the nginx-style edge cache (segmented LRU over whole objects,
//      optional TinyLFU admission)                        — ~0 latency
//   2. the co-located IPFS node's store (pinned content)  — few ms
//   3. the fleet's shared origin cache (when configured)  — ~1 ms + copy
//   4. the P2P network via the full retrieval pipeline    — seconds
//
// Tiers 1, 2 and 4 match the three rows of Table 5; tier 3 exists only
// when the gateway runs as a GatewayFleet replica (docs/GATEWAY.md).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blockstore/blockstore.h"
#include "node/ipfs_node.h"

namespace ipfs::gateway {

using multiformats::Cid;

struct GatewayConfig {
  node::IpfsNodeConfig node;
  std::uint64_t nginx_cache_bytes = 64ull * 1024 * 1024;
  // Edge-cache replacement/admission policy (segmented LRU; TinyLFU off
  // by default — the fleet turns it on for its replicas).
  blockstore::LruConfig edge_cache;
  // Latency model of the local tiers.
  sim::Duration nginx_hit_latency = sim::microseconds(300);
  sim::Duration node_store_base_latency = sim::milliseconds(5);
  double node_store_bytes_per_sec = 500.0 * 1024 * 1024;
  // Shared origin tier (null = standalone gateway). Consulted after the
  // node store and before the P2P pipeline; P2P fills write through to
  // it so sibling replicas stop re-paying upstream retrievals.
  std::shared_ptr<blockstore::LruBlockStore> origin;
  sim::Duration origin_hit_latency = sim::milliseconds(1);
  double origin_bytes_per_sec = 2.0 * 1024 * 1024 * 1024;
  // Durable origin tier behind the in-RAM origin cache: a shared
  // persistent block store (blockstore::make_store) holding the DAG
  // blocks of every object the gateway has served. Consulted when the
  // origin cache misses; a hit reassembles the object and repopulates
  // the RAM tiers above it, so neither an origin-cache eviction nor a
  // fleet restart re-pays the upstream retrieval. Null = off.
  std::shared_ptr<blockstore::BlockStore> origin_persist;
  sim::Duration origin_persist_hit_latency = sim::milliseconds(5);
  double origin_persist_bytes_per_sec = 200.0 * 1024 * 1024;
  // Negative-result cache: a failed P2P retrieval is remembered for this
  // long, so repeated flash crowds on a dead CID fail in edge-cache time
  // instead of each re-paying the full retrieval pipeline. 0 disables.
  sim::Duration negative_ttl = sim::seconds(30);
  // Per-replica metrics label ("r0", "r1", ...). Empty: only the
  // aggregate gateway.* instruments are written. Non-empty: counters are
  // additionally written under gateway.<label>.* so a fleet's registry
  // separates its replicas (docs/OBSERVABILITY.md).
  std::string metrics_label;
};

enum class ServedFrom {
  kNginxCache,
  kNodeStore,
  kOriginCache,
  kP2p,
  kFailed
};

struct GatewayResponse {
  ServedFrom source = ServedFrom::kFailed;
  sim::Duration latency = 0;  // upstream latency as logged by nginx
  std::uint64_t bytes = 0;
  // For P2P-tier responses: which routing path found the provider
  // (kNone when Bitswap resolved it opportunistically or the retrieval
  // failed). Feeds the gateway.routing.* counters.
  routing::Source routing_source = routing::Source::kNone;
};

// Aggregate counters per tier (Table 5 inputs).
struct TierStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
};

class Gateway {
 public:
  // Primary constructor: the gateway's co-located node runs over
  // `transport` (any backend).
  Gateway(transport::Transport& transport, const GatewayConfig& config);
  // Simulator convenience: the node joins `network` as a fresh fabric
  // node (config.node.net).
  Gateway(sim::Network& network, const GatewayConfig& config);

  // Joins the P2P network like any node.
  void bootstrap(std::vector<dht::PeerRef> seeds,
                 std::function<void(bool)> done);

  // Pins an object (all its blocks) into the gateway node's store — the
  // Web3/NFT Storage path that makes content persistently available.
  void pin_object(std::span<const std::uint8_t> data);

  // Handles GET /ipfs/{cid}. The callback receives the tier that served
  // the request and the upstream latency.
  void handle_get(const Cid& cid, std::function<void(GatewayResponse)> done);

  // Handles GET /ipfs/{cid}/{path}: resolves the UnixFS path below the
  // root (fetching the tree from the network when it is not local) and
  // serves the addressed file.
  void handle_get_path(const Cid& root, const std::string& path,
                       std::function<void(GatewayResponse)> done);

  // Parses a gateway URL path of the form "/ipfs/{cid}[/sub/path]".
  // Returns the root CID and the remainder path.
  static std::optional<std::pair<Cid, std::string>> parse_url_path(
      std::string_view url_path);

  node::IpfsNode& node() { return node_; }
  const GatewayConfig& config() const { return config_; }
  const TierStats& stats(ServedFrom source) const;
  std::uint64_t total_requests() const { return total_requests_; }
  blockstore::LruBlockStore& nginx_cache() { return nginx_cache_; }

  // Tier-3 requests that joined an already-running retrieval for the
  // same CID instead of launching their own (the flash-crowd shield).
  std::uint64_t coalesced_requests() const { return coalesced_requests_; }
  // Requests answered (as typed failures) straight from the
  // negative-result cache instead of re-running a doomed retrieval.
  std::uint64_t negative_hits() const { return negative_hits_; }

 private:
  // Computes a response for `cid` through the serving tiers. When
  // `account_tier` is set the response is accounted (tier stats, total,
  // metrics) as it stands; handle_get_path's network branch passes false
  // and accounts the rewritten response itself, so every request lands in
  // exactly one tier and sum(tier requests) == total_requests() always.
  void serve(const Cid& cid, bool account_tier,
             std::function<void(GatewayResponse)> done);

  // The single accounting point: tier stats + total + metrics registry.
  void account(const Cid& cid, const GatewayResponse& response);

  // Copies the blocks of the object below `cid` from the node store into
  // the durable origin tier (no-op when origin_persist is unset). Called
  // at the write-through points, while the blocks are still local.
  void persist_origin_blocks(const Cid& cid);

  TierStats& stats_for(ServedFrom source);

  // One queued tier-P2P request. Each waiter observes its own latency
  // (completion minus its arrival) and is accounted individually; only
  // the upstream retrieval is shared.
  struct Waiter {
    bool account_tier = true;
    sim::Time start = 0;
    std::function<void(GatewayResponse)> done;
  };

  GatewayConfig config_;
  node::IpfsNode node_;
  // The co-located node's transport; declared after node_ (load-bearing:
  // initialized from node_.transport()).
  transport::Transport& transport_;
  blockstore::LruBlockStore nginx_cache_;  // whole objects by root CID
  TierStats nginx_stats_;
  TierStats node_store_stats_;
  TierStats origin_stats_;
  TierStats p2p_stats_;
  TierStats failed_stats_;
  std::uint64_t total_requests_ = 0;
  std::uint64_t coalesced_requests_ = 0;
  std::uint64_t negative_hits_ = 0;
  // In-flight P2P retrievals by CID (singleflight): a flash crowd of
  // misses for one CID pays a single upstream retrieval. Keyed by the
  // Cid itself (totally ordered) — no per-request string allocation.
  std::map<Cid, std::vector<Waiter>> inflight_;
  // Dead-CID shield: CID -> expiry of the cached failure.
  std::map<Cid, sim::Time> negative_until_;
};

}  // namespace ipfs::gateway
