#include "gateway/hash_ring.h"

#include <cmath>

namespace ipfs::gateway {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(HashRingConfig config) : config_(config) {}

std::uint64_t HashRing::point_hash(std::size_t replica, std::size_t vnode) {
  // Two mix rounds decorrelate (replica, vnode) pairs; a single round
  // would leave adjacent vnodes of one replica clustered.
  return mix64(mix64(static_cast<std::uint64_t>(replica) + 1) ^
               (static_cast<std::uint64_t>(vnode) * 0xa0761d6478bd642fULL));
}

void HashRing::add_replica(std::size_t replica) {
  if (!replicas_.insert(replica).second) return;
  for (std::size_t v = 0; v < config_.vnodes; ++v)
    ring_.emplace(point_hash(replica, v), replica);
}

void HashRing::remove_replica(std::size_t replica) {
  if (replicas_.erase(replica) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == replica)
      it = ring_.erase(it);
    else
      ++it;
  }
}

std::optional<std::size_t> HashRing::owner(std::uint64_t key_hash) const {
  if (ring_.empty()) return std::nullopt;
  const auto it = ring_.lower_bound(key_hash);
  return it != ring_.end() ? it->second : ring_.begin()->second;
}

std::uint64_t HashRing::load_bound(std::uint64_t total_load) const {
  if (replicas_.empty()) return 0;
  const double fair =
      static_cast<double>(total_load + 1) / static_cast<double>(replicas_.size());
  return static_cast<std::uint64_t>(
      std::ceil(config_.bounded_load_factor * fair));
}

std::optional<std::size_t> HashRing::pick(
    std::uint64_t key_hash,
    const std::function<std::uint64_t(std::size_t)>& load,
    std::uint64_t total_load) const {
  if (ring_.empty()) return std::nullopt;
  const std::uint64_t bound = load_bound(total_load);
  auto it = ring_.lower_bound(key_hash);
  // One full lap is enough: every replica is visited at its first point
  // past the key, after which the fallback applies.
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    if (it == ring_.end()) it = ring_.begin();
    if (load(it->second) < bound) return it->second;
    ++it;
  }
  return owner(key_hash);  // everyone saturated: the owner takes it
}

}  // namespace ipfs::gateway
