// Consistent-hash ring with bounded loads (Mirrokni et al.), the fleet's
// request router. Each replica owns `vnodes` points on a 64-bit ring; a
// key is served by the successor of its hash. Consistency is the point:
// removing one replica of N moves only that replica's ~1/N of the key
// space, onto the ring successors — everyone else's edge cache stays
// warm. The bounded-load walk additionally skips replicas already at
// `bounded_load_factor` times the fair share of in-flight requests, so a
// flash crowd on one shard spills to the next point instead of melting
// its owner.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

namespace ipfs::gateway {

struct HashRingConfig {
  // Virtual nodes per replica; more points = smoother key-space split.
  std::size_t vnodes = 64;
  // A replica accepts a routed request only while its in-flight count is
  // below ceil(factor * (total_inflight + 1) / replicas).
  double bounded_load_factor = 1.25;
};

class HashRing {
 public:
  explicit HashRing(HashRingConfig config = {});

  void add_replica(std::size_t replica);
  void remove_replica(std::size_t replica);
  bool contains(std::size_t replica) const { return replicas_.contains(replica); }
  std::size_t replica_count() const { return replicas_.size(); }

  // Ring owner of the key: the replica of the first point at or after
  // key_hash (wrapping). nullopt on an empty ring.
  std::optional<std::size_t> owner(std::uint64_t key_hash) const;

  // Bounded-load pick: walks successor points, skipping replicas whose
  // current load (as reported by `load`) has reached the bound. Falls
  // back to the ring owner when every replica is saturated.
  std::optional<std::size_t> pick(
      std::uint64_t key_hash,
      const std::function<std::uint64_t(std::size_t)>& load,
      std::uint64_t total_load) const;

  // The per-replica load ceiling for a given total (exposed for tests).
  std::uint64_t load_bound(std::uint64_t total_load) const;

 private:
  static std::uint64_t point_hash(std::size_t replica, std::size_t vnode);

  HashRingConfig config_;
  std::map<std::uint64_t, std::size_t> ring_;  // point -> replica
  std::set<std::size_t> replicas_;
};

}  // namespace ipfs::gateway
