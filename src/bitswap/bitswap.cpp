#include "bitswap/bitswap.h"

#include "merkledag/merkledag.h"
#include "transport/sim_transport.h"

namespace ipfs::bitswap {

namespace {
constexpr std::size_t kWantMessageBytes = 48;
constexpr std::size_t kHaveMessageBytes = 40;
constexpr std::size_t kBlockOverheadBytes = 64;
}  // namespace

Bitswap::Bitswap(transport::Transport& transport,
                 blockstore::BlockStore& store)
    : transport_(transport), node_(transport.local()), store_(store) {}

Bitswap::Bitswap(std::unique_ptr<transport::Transport> transport,
                 blockstore::BlockStore& store)
    : Bitswap(*transport, store) {
  owned_transport_ = std::move(transport);
}

Bitswap::Bitswap(sim::Network& network, sim::NodeId node,
                 blockstore::BlockStore& store)
    : Bitswap(std::make_unique<transport::SimTransport>(network, node),
              store) {}

std::string Bitswap::want_key(const Cid& cid) {
  const auto bytes = cid.encode();
  return std::string(bytes.begin(), bytes.end());
}

bool Bitswap::handle_request(
    sim::NodeId from, const sim::MessagePtr& message,
    const std::function<void(sim::MessagePtr, std::size_t)>& respond) {
  metrics::Registry& metrics = transport_.metrics();
  switch (message->kind()) {
    case sim::MessageKind::kWantHaveRequest: {
      const auto* want_have =
          static_cast<const WantHaveRequest*>(message.get());
      metrics.counter("bitswap.want_have.rx").inc();
      auto response = std::make_shared<HaveResponse>();
      response->have = store_.has(want_have->cid);
      if (!response->have) metrics.counter("bitswap.dont_have.tx").inc();
      respond(std::move(response), kHaveMessageBytes);
      return true;
    }
    case sim::MessageKind::kWantBlockRequest: {
      const auto* want_block =
          static_cast<const WantBlockRequest*>(message.get());
      metrics.counter("bitswap.want_block.rx").inc();
      auto response = std::make_shared<BlockResponse>();
      response->cid = want_block->cid;
      response->data = store_.get(want_block->cid);
      std::size_t size = kBlockOverheadBytes;
      if (response->data) {
        size += response->data->size();
        Ledger& ledger = ledgers_[from];
        ledger.bytes_sent += response->data->size();
        ++ledger.blocks_sent;
        metrics.counter("bitswap.blocks_sent").inc();
        metrics.counter("bitswap.bytes_sent").inc(response->data->size());
      } else {
        response->dont_have = want_block->send_dont_have;
        if (response->dont_have)
          metrics.counter("bitswap.dont_have.tx").inc();
      }
      respond(std::move(response), size);
      return true;
    }
    default:
      return false;
  }
}

struct Bitswap::Discovery {
  bool finished = false;
  std::size_t answered = 0;
  std::size_t total = 0;
  metrics::SpanId span = 0;  // bitswap.discover trace span
  transport::Timer timer;
};

void Bitswap::discover(const Cid& cid, sim::Duration timeout,
                       std::function<void(std::optional<sim::NodeId>)> done,
                       bool early_exit) {
  ++discovery_attempts_;
  metrics::Registry& metrics = transport_.metrics();
  metrics.counter("bitswap.discovery_attempts").inc();
  const auto peers = transport_.connections();
  if (peers.empty()) {
    metrics.end_span(
        metrics.begin_span("bitswap.discover", node_, cid.to_string()),
        false);
    done(std::nullopt);
    return;
  }

  wantlist_.insert(want_key(cid));
  auto state = std::make_shared<Discovery>();
  state->total = peers.size();
  state->span = metrics.begin_span("bitswap.discover", node_, cid.to_string());
  const std::uint64_t discovery_id = next_discovery_id_++;
  discoveries_.emplace(discovery_id, state);

  auto finish = [this, cid, state, discovery_id,
                 done = std::move(done)](std::optional<sim::NodeId> peer) {
    if (state->finished) return;
    state->finished = true;
    state->timer.cancel();
    discoveries_.erase(discovery_id);
    wantlist_.erase(want_key(cid));
    if (peer) {
      ++discovery_hits_;
      transport_.metrics().counter("bitswap.discovery_hits").inc();
    }
    transport_.metrics().end_span(state->span, peer.has_value());
    done(peer);
  };

  state->timer = transport_.schedule_after(
      timeout, [finish] { finish(std::nullopt); });

  for (const sim::NodeId peer : peers) {
    auto request = std::make_shared<WantHaveRequest>();
    request->cid = cid;
    metrics.counter("bitswap.want_have.tx").inc();
    transport_.request(
        peer, std::move(request), kWantMessageBytes, timeout,
        [this, state, finish, peer, early_exit](
            sim::RpcStatus status, const sim::MessagePtr& message) {
          if (state->finished) return;
          ++state->answered;
          if (status == sim::RpcStatus::kOk && message != nullptr &&
              message->kind() == sim::MessageKind::kHaveResponse) {
            const auto* have =
                static_cast<const HaveResponse*>(message.get());
            if (have->have) {
              finish(peer);
              return;
            }
            transport_.metrics().counter("bitswap.dont_have.rx").inc();
          }
          if (early_exit && state->answered == state->total)
            finish(std::nullopt);
        });
  }
}

void Bitswap::probe_have(sim::NodeId peer, const Cid& cid,
                         std::function<void(bool, bool)> done) {
  auto request = std::make_shared<WantHaveRequest>();
  request->cid = cid;
  transport_.metrics().counter("bitswap.want_have.tx").inc();
  transport_.request(
      peer, std::move(request), kWantMessageBytes, kDiscoveryTimeout,
      [this, done = std::move(done)](sim::RpcStatus status,
                                     const sim::MessagePtr& message) {
        if (status != sim::RpcStatus::kOk || message == nullptr ||
            message->kind() != sim::MessageKind::kHaveResponse) {
          done(false, false);
          return;
        }
        const auto* have = static_cast<const HaveResponse*>(message.get());
        if (!have->have)
          transport_.metrics().counter("bitswap.dont_have.rx").inc();
        done(have->have, true);
      });
}

void Bitswap::fetch_block(sim::NodeId peer, const Cid& cid,
                          std::function<void(BlockResult)> done) {
  wantlist_.insert(want_key(cid));
  auto request = std::make_shared<WantBlockRequest>();
  request->cid = cid;
  request->send_dont_have = true;
  transport_.metrics().counter("bitswap.want_block.tx").inc();
  transport_.request(
      peer, std::move(request), kWantMessageBytes, kBlockTimeout,
      [this, peer, cid, done = std::move(done)](sim::RpcStatus status,
                                                const sim::MessagePtr& message) {
        wantlist_.erase(want_key(cid));
        BlockResult result;
        if (status != sim::RpcStatus::kOk || message == nullptr ||
            message->kind() != sim::MessageKind::kBlockResponse) {
          transport_.metrics().counter("bitswap.block_fetch_failures").inc();
          done(std::move(result));
          return;
        }
        const auto* response =
            static_cast<const BlockResponse*>(message.get());
        if (!response->data) {
          if (response->dont_have)
            transport_.metrics().counter("bitswap.dont_have.rx").inc();
          result.dont_have = response->dont_have;
          transport_.metrics().counter("bitswap.block_fetch_failures").inc();
          done(std::move(result));
          return;
        }
        // Verify against the CID before accepting (Section 2.1:
        // self-certification removes the need to trust the provider).
        if (response->cid != cid || !cid.hash().verifies(*response->data)) {
          transport_.metrics().counter("bitswap.block_fetch_failures").inc();
          done(std::move(result));
          return;
        }
        Ledger& ledger = ledgers_[peer];
        ledger.bytes_received += response->data->size();
        ++ledger.blocks_received;
        transport_.metrics().counter("bitswap.blocks_received").inc();
        transport_.metrics()
            .counter("bitswap.bytes_received")
            .inc(response->data->size());
        store_.put(cid, response->data);
        result.data = response->data;
        done(std::move(result));
      });
}

struct Bitswap::DagFetch {
  std::vector<Cid> pending;
  // CIDs ever enqueued; shared links in the DAG would otherwise be
  // dispatched once per parent (see Session::Fetch::enqueued).
  std::unordered_set<std::string> enqueued;
  int in_flight = 0;
  bool failed = false;
  bool finished = false;
  FetchStats stats;
  sim::Time started = 0;
  metrics::SpanId span = 0;  // bitswap.fetch_dag trace span
  std::function<void(FetchStats)> done;

  bool mark_new(const Cid& cid) {
    return enqueued.insert(want_key(cid)).second;
  }
};

void Bitswap::fetch_dag(sim::NodeId peer, const Cid& root,
                        std::function<void(FetchStats)> done) {
  auto state = std::make_shared<DagFetch>();
  state->started = transport_.now();
  state->mark_new(root);
  state->pending.push_back(root);
  state->done = std::move(done);
  state->span = transport_.metrics().begin_span("bitswap.fetch_dag", node_,
                                              root.to_string(), 0, peer);
  pump_dag_fetch(peer, std::move(state));
}

void Bitswap::pump_dag_fetch(sim::NodeId peer,
                             std::shared_ptr<DagFetch> state) {
  if (state->finished) return;

  // Resolve local hits (deduplicated chunks) without network traffic.
  while (!state->pending.empty()) {
    const Cid next = state->pending.back();
    const auto local = store_.get(next);
    if (!local) break;
    state->pending.pop_back();
    if (next.content_codec() == multiformats::Multicodec::kDagPb) {
      if (const auto node = merkledag::DagNode::decode(*local)) {
        for (const auto& link : node->links) {
          if (state->mark_new(link.cid))
            state->pending.push_back(link.cid);
          else
            transport_.metrics()
                .counter("bitswap.duplicate_wants_suppressed")
                .inc();
        }
      }
    }
  }

  if (state->failed ||
      (state->pending.empty() && state->in_flight == 0)) {
    state->finished = true;
    state->stats.ok = !state->failed;
    state->stats.elapsed = transport_.now() - state->started;
    transport_.metrics().end_span(state->span, state->stats.ok,
                                state->stats.bytes);
    state->done(state->stats);
    return;
  }

  while (!state->pending.empty() && state->in_flight < kFetchWindow) {
    const Cid next = state->pending.back();
    state->pending.pop_back();
    ++state->in_flight;
    fetch_block(peer, next,
                [this, peer, next, state](BlockResult block) {
                  --state->in_flight;
                  if (state->finished) return;
                  if (!block) {
                    state->failed = true;
                  } else {
                    ++state->stats.blocks;
                    state->stats.bytes += block.data->size();
                    if (next.content_codec() ==
                        multiformats::Multicodec::kDagPb) {
                      if (const auto node =
                              merkledag::DagNode::decode(*block.data)) {
                        for (const auto& link : node->links) {
                          if (state->mark_new(link.cid))
                            state->pending.push_back(link.cid);
                          else
                            transport_.metrics()
                                .counter("bitswap.duplicate_wants_suppressed")
                                .inc();
                        }
                      } else {
                        state->failed = true;
                      }
                    }
                  }
                  pump_dag_fetch(peer, state);
                });
  }
}

void Bitswap::handle_crash() {
  for (auto& [id, discovery] : discoveries_) {
    discovery->finished = true;
    discovery->timer.cancel();
    transport_.metrics().end_span(discovery->span, false);
  }
  discoveries_.clear();
  wantlist_.clear();
}

const Ledger& Bitswap::ledger_for(sim::NodeId peer) { return ledgers_[peer]; }

}  // namespace ipfs::bitswap
