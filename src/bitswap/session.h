// Bitswap sessions with multi-path transfer (the optimization line of
// the paper's references [20, 21]: "Accelerating Content Routing with
// Bitswap: A Multi-Path File Transfer Protocol").
//
// A session tracks a set of peers known (or believed) to hold an object
// and stripes WANT_BLOCK requests across them, preferring peers that
// answer fastest. Blocks a peer fails to deliver are retried on the
// remaining peers, so a session survives individual provider failures.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "bitswap/bitswap.h"

namespace ipfs::bitswap {

struct SessionPeerStats {
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
  std::uint64_t failures = 0;
  double ewma_latency_ms = 0.0;  // exponential moving average
};

struct SessionFetchStats : FetchStats {
  std::map<sim::NodeId, SessionPeerStats> per_peer;
  std::size_t retried_blocks = 0;
};

class Session {
 public:
  // The session shares its Bitswap's transport (clock, metrics).
  explicit Session(Bitswap& bitswap);

  // Adds a candidate provider. Duplicates are ignored.
  void add_peer(sim::NodeId peer);
  std::size_t peer_count() const { return peers_.size(); }

  // Fetches the DAG below `root`, striping block requests over the
  // session peers (up to Bitswap::kFetchWindow in flight in total,
  // assigned to the least-loaded / fastest peers). Fails only when a
  // block cannot be delivered by ANY session peer.
  void fetch_dag(const multiformats::Cid& root,
                 std::function<void(SessionFetchStats)> done);

 private:
  struct PeerState {
    sim::NodeId node;
    int in_flight = 0;
    bool dead = false;  // exhausted: repeated failures
    SessionPeerStats stats;
  };

  struct Fetch;
  void pump(std::shared_ptr<Fetch> fetch);
  PeerState* pick_peer(const std::vector<sim::NodeId>& exclude);

  Bitswap& bitswap_;
  transport::Transport& transport_;
  std::vector<PeerState> peers_;
};

}  // namespace ipfs::bitswap
