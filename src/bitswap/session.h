// Bitswap sessions with multi-path transfer (the optimization line of
// the paper's references [20, 21]: "Accelerating Content Routing with
// Bitswap: A Multi-Path File Transfer Protocol"), upgraded to the
// 1.2.0 want tiers.
//
// A session tracks a set of peers known (or believed) to hold an object
// and stripes WANT_BLOCK requests across them. Peers are ranked by a
// score fed from three observations — HAVE-probe latency, delivered
// block throughput, and the DONT_HAVE ratio — so WANT_BLOCKs flow to
// the peers most likely to answer fast. An explicit DONT_HAVE re-routes
// the want to the next-best peer immediately (no block timeout burned),
// and blocks a peer fails to deliver are retried on the remaining
// peers, so a session survives individual provider failures.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "bitswap/bitswap.h"

namespace ipfs::bitswap {

struct SessionConfig {
  // Total WANT_BLOCKs in flight across the session.
  int window = 32;
  // Cap per peer, so one fast provider cannot absorb the whole window
  // (parallelism across providers is the point of a session).
  int per_peer_window = Bitswap::kFetchWindow;
  // WANT_HAVE-probe every peer for the root before the first WANT_BLOCK;
  // seeds the latency score and demotes peers that answer DONT_HAVE.
  bool probe_want_have = true;
  // A peer is dropped from the rotation after this many transport
  // failures (timeouts / resets). Honest DONT_HAVEs never kill a peer —
  // they only raise its score.
  std::uint64_t max_peer_failures = 3;
};

struct SessionPeerStats {
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
  std::uint64_t failures = 0;    // transport failures (timeout/reset)
  std::uint64_t dont_haves = 0;  // explicit DONT_HAVE answers
  std::uint64_t wants_sent = 0;  // WANT_BLOCKs dispatched to this peer
  double ewma_latency_ms = 0.0;  // block delivery, exponential moving avg
  double have_latency_ms = 0.0;  // WANT_HAVE probe round trip (0 = none)
};

struct SessionFetchStats : FetchStats {
  std::map<sim::NodeId, SessionPeerStats> per_peer;
  std::size_t retried_blocks = 0;
  std::size_t dont_have_reroutes = 0;
};

class Session {
 public:
  // The session shares its Bitswap's transport (clock, metrics).
  explicit Session(Bitswap& bitswap, SessionConfig config = {});

  // Adds a candidate provider. Duplicates are ignored.
  void add_peer(sim::NodeId peer);
  std::size_t peer_count() const { return peers_.size(); }

  // Fetches the DAG below `root`, striping block requests over the
  // session peers (up to SessionConfig::window in flight in total,
  // assigned to the best-scoring peers). Fails only when a block cannot
  // be delivered by ANY session peer.
  void fetch_dag(const multiformats::Cid& root,
                 std::function<void(SessionFetchStats)> done);

 private:
  struct PeerState {
    sim::NodeId node;
    int in_flight = 0;
    bool dead = false;       // exhausted: repeated transport failures
    bool answered_dont_have_root = false;  // probe said DONT_HAVE
    SessionPeerStats stats;
  };

  struct Fetch;
  void pump(std::shared_ptr<Fetch> fetch);
  void start_wants(std::shared_ptr<Fetch> fetch);
  PeerState* pick_peer(const std::vector<sim::NodeId>& exclude);
  // Lower is better: expected wait for the next block from this peer.
  // Blends block latency (or the HAVE probe's until a block lands), a
  // DONT_HAVE-ratio penalty, and the queue already in flight there.
  double score(const PeerState& peer) const;

  Bitswap& bitswap_;
  transport::Transport& transport_;
  SessionConfig config_;
  std::vector<PeerState> peers_;
  // Session-wide average block service time (EWMA, ms). A HAVE probe
  // measures the wire, not the payload, so peers that have not delivered
  // a block yet are scored no better than this average — one slow first
  // block must not banish a peer the probes never load-tested.
  double avg_block_ms_ = 0.0;
};

}  // namespace ipfs::bitswap
