// Bitswap (paper Section 3.2, "Content Exchange"): a chunk exchange
// protocol, here at the 1.2.0 protocol level. Requests announce
// interest in CIDs via wantlists: WANT_HAVE probes who holds a block,
// HAVE/DONT_HAVE answer, WANT_BLOCK pulls the block itself. A
// WANT_BLOCK may ask for an explicit DONT_HAVE reply instead of
// silence, which is what lets sessions (session.h) re-route a want to
// another provider immediately instead of burning the block timeout.
//
// Bitswap is also IPFS's opportunistic discovery mechanism: before a DHT
// walk, a requester broadcasts WANT_HAVE to every *connected* peer and
// waits up to 1 s (kDiscoveryTimeout) for a HAVE.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "blockstore/blockstore.h"
#include "multiformats/cid.h"
#include "transport/transport.h"

namespace ipfs::bitswap {

using blockstore::Block;
using blockstore::BlockData;
using multiformats::Cid;

// Discovery falls back to the DHT after this timeout (Section 3.2).
constexpr sim::Duration kDiscoveryTimeout = sim::seconds(1);
// Per-block transfer timeout inside a session.
constexpr sim::Duration kBlockTimeout = sim::seconds(30);

struct WantHaveRequest : sim::Message {
  Cid cid;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kWantHaveRequest;
  }
};

struct HaveResponse : sim::Message {
  bool have = false;  // HAVE or DONT_HAVE
  sim::MessageKind kind() const override {
    return sim::MessageKind::kHaveResponse;
  }
};

struct WantBlockRequest : sim::Message {
  Cid cid;
  // Bitswap 1.2.0: ask the responder to answer a miss with an explicit
  // DONT_HAVE (dont_have flag on the BlockResponse) instead of an empty
  // reply, so the requester can re-route without waiting out a timeout.
  bool send_dont_have = false;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kWantBlockRequest;
  }
};

struct BlockResponse : sim::Message {
  Cid cid;
  // Shared payload (nullptr on a miss): the responder hands out the
  // blockstore's allocation, the wire layer copies exactly once, and an
  // in-process sim delivery copies never.
  BlockData data;
  bool dont_have = false;  // explicit miss (send_dont_have was set)
  sim::MessageKind kind() const override {
    return sim::MessageKind::kBlockResponse;
  }
};

// Per-peer accounting of exchanged bytes (the Bitswap "ledger").
struct Ledger {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t blocks_sent = 0;
  std::uint64_t blocks_received = 0;
};

struct FetchStats {
  bool ok = false;
  sim::Duration elapsed = 0;
  std::size_t blocks = 0;
  std::uint64_t bytes = 0;
};

// Outcome of one fetch_block: `data` set on success; `dont_have` set
// when the peer answered an explicit DONT_HAVE (so the caller can tell
// an honest miss from a transport failure/timeout).
struct BlockResult {
  BlockData data;
  bool dont_have = false;
  explicit operator bool() const { return data != nullptr; }
};

class Bitswap {
 public:
  Bitswap(transport::Transport& transport, blockstore::BlockStore& store);
  // Simulator convenience: wraps fabric node `node` in an owned
  // SimTransport (harness/test construction path).
  Bitswap(sim::Network& network, sim::NodeId node,
          blockstore::BlockStore& store);

  // Protocol dispatch; returns false for non-Bitswap messages.
  bool handle_request(
      sim::NodeId from, const sim::MessagePtr& message,
      const std::function<void(sim::MessagePtr, std::size_t)>& respond);

  // Opportunistic discovery: WANT_HAVE to all connected peers; reports the
  // first peer answering HAVE, or nullopt after `timeout`. Fires exactly
  // once. With no connected peers it reports failure immediately.
  //
  // By default the full timeout is always paid on a miss, matching go-ipfs
  // (and footnote 4 of the paper: every DHT-resolved retrieval carries the
  // 1 s Bitswap delay). `early_exit` lets a miss complete as soon as all
  // connected peers answered DONT_HAVE — the optimization the paper's
  // Section 6.4 discussion contemplates.
  void discover(const Cid& cid, sim::Duration timeout,
                std::function<void(std::optional<sim::NodeId>)> done,
                bool early_exit = false);

  // WANT_HAVE probe of a single peer: reports (have, answered). Sessions
  // use it to rank providers before committing WANT_BLOCKs.
  void probe_have(sim::NodeId peer, const Cid& cid,
                  std::function<void(bool have, bool answered)> done);

  // Pulls one block from `peer` (WANT_BLOCK, send_dont_have set).
  // Verified against the CID and stored locally on success.
  void fetch_block(sim::NodeId peer, const Cid& cid,
                   std::function<void(BlockResult)> done);

  // Fetches the whole DAG below `root` from `peer`, pipelining up to
  // kFetchWindow outstanding WANT_BLOCKs (sessions keep the pipe full so
  // per-block round trips are hidden behind the transfer).
  void fetch_dag(sim::NodeId peer, const Cid& root,
                 std::function<void(FetchStats)> done);

  static constexpr int kFetchWindow = 8;

  // Applies a process crash (sim/faults.h): in-flight discoveries are
  // abandoned without their callbacks firing (their timeout timers are
  // requester-owned, so the network's epoch muting alone cannot stop
  // them) and the wantlist is dropped. The ledgers survive — accounting
  // lives in the datastore, and the fuzz harness checks conservation
  // against them across crashes.
  void handle_crash();

  const Ledger& ledger_for(sim::NodeId peer);
  const std::unordered_map<sim::NodeId, Ledger>& ledgers() const {
    return ledgers_;
  }
  blockstore::BlockStore& store() { return store_; }
  transport::Transport& transport() { return transport_; }
  sim::NodeId self() const { return node_; }
  const std::unordered_set<std::string>& wantlist() const { return wantlist_; }

  std::uint64_t discovery_attempts() const { return discovery_attempts_; }
  std::uint64_t discovery_hits() const { return discovery_hits_; }

 private:
  Bitswap(std::unique_ptr<transport::Transport> transport,
          blockstore::BlockStore& store);

  struct DagFetch;
  struct Discovery;
  void pump_dag_fetch(sim::NodeId peer, std::shared_ptr<DagFetch> state);

  static std::string want_key(const Cid& cid);

  // Declared first so an owned backend outlives transport_ users.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport& transport_;
  sim::NodeId node_;
  blockstore::BlockStore& store_;
  std::unordered_set<std::string> wantlist_;
  std::unordered_map<sim::NodeId, Ledger> ledgers_;
  // In-flight discover() calls, so handle_crash() can abandon them.
  std::unordered_map<std::uint64_t, std::shared_ptr<Discovery>> discoveries_;
  std::uint64_t next_discovery_id_ = 1;
  std::uint64_t discovery_attempts_ = 0;
  std::uint64_t discovery_hits_ = 0;
};

}  // namespace ipfs::bitswap
