#include "bitswap/session.h"

#include <algorithm>
#include <set>

#include "merkledag/merkledag.h"

namespace ipfs::bitswap {

Session::Session(Bitswap& bitswap, SessionConfig config)
    : bitswap_(bitswap), transport_(bitswap.transport()), config_(config) {}

void Session::add_peer(sim::NodeId peer) {
  for (const auto& existing : peers_)
    if (existing.node == peer) return;
  PeerState state;
  state.node = peer;
  peers_.push_back(state);
}

// One block in flight, with the peers already tried for it.
struct Session::Fetch {
  multiformats::Cid root;
  std::vector<multiformats::Cid> pending;
  // Per-CID list of peers that already failed it (string-keyed).
  std::map<std::string, std::vector<sim::NodeId>> failed_on;
  // Every CID ever enqueued (pending, in flight, or already landed). A
  // DAG with shared links yields the same child from several parents;
  // without this set both copies would be dispatched before either
  // lands, double-fetching the block and double-counting stats.
  std::set<std::string> enqueued;
  int in_flight = 0;
  std::size_t probes_outstanding = 0;
  bool finished = false;
  bool failed = false;
  SessionFetchStats stats;
  sim::Time started = 0;
  metrics::SpanId span = 0;  // bitswap.session_fetch trace span
  std::function<void(SessionFetchStats)> done;

  static std::string key_of(const multiformats::Cid& cid) {
    const auto bytes = cid.encode();
    return std::string(bytes.begin(), bytes.end());
  }

  // True when the CID was not seen before (and is now marked seen).
  bool mark_new(const multiformats::Cid& cid) {
    return enqueued.insert(key_of(cid)).second;
  }
};

double Session::score(const PeerState& peer) const {
  // Until a block lands, the HAVE probe's round trip is the only latency
  // signal; an unprobed, untried peer scores 0 and gets tried first.
  double expected = peer.stats.ewma_latency_ms > 0.0
                        ? peer.stats.ewma_latency_ms
                        : peer.stats.have_latency_ms;
  // Throughput prior: a probe round trip says nothing about upload
  // bandwidth, so a peer with no deliveries is scored no better than the
  // session-wide average block time.
  if (peer.stats.blocks == 0 && avg_block_ms_ > 0.0)
    expected = std::max(expected, avg_block_ms_);
  const double answers =
      static_cast<double>(peer.stats.blocks + peer.stats.dont_haves);
  const double dont_have_ratio =
      answers > 0.0 ? static_cast<double>(peer.stats.dont_haves) / answers
                    : 0.0;
  // A peer whose probe already said DONT_HAVE for the root starts behind
  // every peer that said HAVE, but stays available as a fallback.
  const double probe_penalty = peer.answered_dont_have_root ? 1000.0 : 0.0;
  // Queue awareness: the peer's upload serializes its in-flight wants,
  // so the expected wait grows with the queue length.
  return (expected + probe_penalty) * (1.0 + 2.0 * dont_have_ratio) *
         static_cast<double>(peer.in_flight + 1);
}

Session::PeerState* Session::pick_peer(
    const std::vector<sim::NodeId>& exclude) {
  PeerState* best = nullptr;
  for (auto& peer : peers_) {
    if (peer.dead) continue;
    if (peer.in_flight >= config_.per_peer_window) continue;
    if (std::find(exclude.begin(), exclude.end(), peer.node) !=
        exclude.end())
      continue;
    if (best == nullptr) {
      best = &peer;
      continue;
    }
    // Best score first; break ties by load, then node id (determinism).
    const double peer_score = score(peer);
    const double best_score = score(*best);
    if (peer_score < best_score ||
        (peer_score == best_score &&
         (peer.in_flight < best->in_flight ||
          (peer.in_flight == best->in_flight && peer.node < best->node)))) {
      best = &peer;
    }
  }
  return best;
}

void Session::fetch_dag(const multiformats::Cid& root,
                        std::function<void(SessionFetchStats)> done) {
  auto fetch = std::make_shared<Fetch>();
  fetch->root = root;
  fetch->started = transport_.now();
  fetch->mark_new(root);
  fetch->pending.push_back(root);
  fetch->done = std::move(done);
  fetch->span = transport_.metrics().begin_span(
      "bitswap.session_fetch", bitswap_.self(), root.to_string());
  if (peers_.empty()) {
    fetch->stats.ok = false;
    transport_.metrics().end_span(fetch->span, false);
    fetch->done(fetch->stats);
    return;
  }
  if (!config_.probe_want_have) {
    pump(std::move(fetch));
    return;
  }

  // Probe phase: WANT_HAVE the root at every peer in parallel. The
  // probes seed have_latency_ms (the initial ranking) and demote peers
  // without the content. WANT_BLOCK dispatch starts as soon as the
  // first probe answers — the slowest peer must not gate the transfer.
  fetch->probes_outstanding = peers_.size();
  for (auto& peer : peers_) {
    const sim::NodeId node = peer.node;
    const sim::Time sent_at = transport_.now();
    bitswap_.probe_have(
        node, root, [this, fetch, node, sent_at](bool have, bool answered) {
          for (auto& state : peers_) {
            if (state.node != node) continue;
            if (answered) {
              state.stats.have_latency_ms =
                  sim::to_millis(transport_.now() - sent_at);
              if (!have) {
                state.answered_dont_have_root = true;
                ++state.stats.dont_haves;
              }
            }
          }
          if (fetch->probes_outstanding > 0) --fetch->probes_outstanding;
          if (!fetch->finished) pump(fetch);
        });
  }
  pump(std::move(fetch));
}

void Session::pump(std::shared_ptr<Fetch> fetch) {
  if (fetch->finished) return;

  start_wants(fetch);

  // Termination / failure checks (after dispatch, so a pick_peer dead
  // end with nothing in flight fails the fetch rather than stalling).
  // Outstanding probes never block completion: they only feed scores.
  if ((fetch->failed || fetch->pending.empty()) && fetch->in_flight == 0) {
    fetch->finished = true;
    fetch->stats.ok = !fetch->failed && fetch->pending.empty();
    fetch->stats.elapsed = transport_.now() - fetch->started;
    for (const auto& peer : peers_)
      fetch->stats.per_peer[peer.node] = peer.stats;
    transport_.metrics().end_span(fetch->span, fetch->stats.ok,
                                fetch->stats.bytes);
    fetch->done(fetch->stats);
  }
}

void Session::start_wants(std::shared_ptr<Fetch> fetch) {
  while (!fetch->pending.empty() && fetch->in_flight < config_.window &&
         !fetch->failed) {
    const multiformats::Cid next = fetch->pending.back();

    // Local hits (deduplicated chunks) resolve without network traffic.
    if (const auto local = bitswap_.store().get(next)) {
      fetch->pending.pop_back();
      if (next.content_codec() == multiformats::Multicodec::kDagPb) {
        if (const auto dag_node = merkledag::DagNode::decode(*local)) {
          for (const auto& link : dag_node->links) {
            if (fetch->mark_new(link.cid))
              fetch->pending.push_back(link.cid);
            else
              transport_.metrics()
                  .counter("bitswap.duplicate_wants_suppressed")
                  .inc();
          }
        }
      }
      continue;
    }

    const auto& tried = fetch->failed_on[Fetch::key_of(next)];
    PeerState* peer = pick_peer(tried);
    if (peer == nullptr) {
      if (fetch->in_flight > 0) break;  // retry when a slot frees up
      // Every session peer failed this block.
      fetch->failed = true;
      break;
    }
    fetch->pending.pop_back();
    ++fetch->in_flight;
    ++peer->in_flight;
    ++peer->stats.wants_sent;
    const sim::NodeId node = peer->node;
    const sim::Time sent_at = transport_.now();

    bitswap_.fetch_block(
        node, next,
        [this, fetch, next, node, sent_at](BlockResult block) {
          --fetch->in_flight;
          for (auto& peer : peers_) {
            if (peer.node != node) continue;
            --peer.in_flight;
            const double latency_ms = sim::to_millis(
                transport_.now() - sent_at);
            if (block) {
              ++peer.stats.blocks;
              peer.stats.bytes += block.data->size();
              peer.stats.ewma_latency_ms =
                  peer.stats.ewma_latency_ms == 0.0
                      ? latency_ms
                      : 0.7 * peer.stats.ewma_latency_ms + 0.3 * latency_ms;
              avg_block_ms_ = avg_block_ms_ == 0.0
                                  ? latency_ms
                                  : 0.7 * avg_block_ms_ + 0.3 * latency_ms;
            } else if (block.dont_have) {
              // An honest miss: penalize the score, not the liveness.
              ++peer.stats.dont_haves;
            } else {
              ++peer.stats.failures;
              if (peer.stats.failures >= config_.max_peer_failures)
                peer.dead = true;
            }
          }
          if (fetch->finished) return;

          if (!block) {
            // Requeue on the remaining peers (already in `enqueued`; a
            // retry is a re-dispatch of the same want, not a duplicate).
            fetch->failed_on[Fetch::key_of(next)].push_back(node);
            fetch->pending.push_back(next);
            if (block.dont_have) {
              ++fetch->stats.dont_have_reroutes;
              transport_.metrics()
                  .counter("bitswap.session_dont_have_reroutes")
                  .inc();
            } else {
              ++fetch->stats.retried_blocks;
              transport_.metrics().counter("bitswap.session_retries").inc();
            }
          } else {
            ++fetch->stats.blocks;
            fetch->stats.bytes += block.data->size();
            if (next.content_codec() == multiformats::Multicodec::kDagPb) {
              if (const auto dag_node =
                      merkledag::DagNode::decode(*block.data)) {
                for (const auto& link : dag_node->links) {
                  if (fetch->mark_new(link.cid))
                    fetch->pending.push_back(link.cid);
                  else
                    transport_.metrics()
                        .counter("bitswap.duplicate_wants_suppressed")
                        .inc();
                }
              } else {
                fetch->failed = true;
              }
            }
          }
          pump(fetch);
        });
  }
}

}  // namespace ipfs::bitswap
