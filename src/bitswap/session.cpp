#include "bitswap/session.h"

#include <algorithm>
#include <set>

#include "merkledag/merkledag.h"

namespace ipfs::bitswap {

Session::Session(Bitswap& bitswap)
    : bitswap_(bitswap), transport_(bitswap.transport()) {}

void Session::add_peer(sim::NodeId peer) {
  for (const auto& existing : peers_)
    if (existing.node == peer) return;
  PeerState state;
  state.node = peer;
  peers_.push_back(state);
}

// One block in flight, with the peers already tried for it.
struct Session::Fetch {
  std::vector<multiformats::Cid> pending;
  // Per-CID list of peers that already failed it (string-keyed).
  std::map<std::string, std::vector<sim::NodeId>> failed_on;
  // Every CID ever enqueued (pending, in flight, or already landed). A
  // DAG with shared links yields the same child from several parents;
  // without this set both copies would be dispatched before either
  // lands, double-fetching the block and double-counting stats.
  std::set<std::string> enqueued;
  int in_flight = 0;
  bool finished = false;
  bool failed = false;
  SessionFetchStats stats;
  sim::Time started = 0;
  metrics::SpanId span = 0;  // bitswap.session_fetch trace span
  std::function<void(SessionFetchStats)> done;

  static std::string key_of(const multiformats::Cid& cid) {
    const auto bytes = cid.encode();
    return std::string(bytes.begin(), bytes.end());
  }

  // True when the CID was not seen before (and is now marked seen).
  bool mark_new(const multiformats::Cid& cid) {
    return enqueued.insert(key_of(cid)).second;
  }
};

Session::PeerState* Session::pick_peer(
    const std::vector<sim::NodeId>& exclude) {
  PeerState* best = nullptr;
  for (auto& peer : peers_) {
    if (peer.dead) continue;
    if (std::find(exclude.begin(), exclude.end(), peer.node) !=
        exclude.end())
      continue;
    if (best == nullptr) {
      best = &peer;
      continue;
    }
    // Least load first; break ties by observed latency.
    if (peer.in_flight < best->in_flight ||
        (peer.in_flight == best->in_flight &&
         peer.stats.ewma_latency_ms < best->stats.ewma_latency_ms)) {
      best = &peer;
    }
  }
  return best;
}

void Session::fetch_dag(const multiformats::Cid& root,
                        std::function<void(SessionFetchStats)> done) {
  auto fetch = std::make_shared<Fetch>();
  fetch->started = transport_.now();
  fetch->mark_new(root);
  fetch->pending.push_back(root);
  fetch->done = std::move(done);
  fetch->span = transport_.metrics().begin_span(
      "bitswap.session_fetch", bitswap_.self(), root.to_string());
  if (peers_.empty()) {
    fetch->stats.ok = false;
    transport_.metrics().end_span(fetch->span, false);
    fetch->done(fetch->stats);
    return;
  }
  pump(std::move(fetch));
}

void Session::pump(std::shared_ptr<Fetch> fetch) {
  if (fetch->finished) return;

  // Termination / failure checks.
  if ((fetch->failed || fetch->pending.empty()) && fetch->in_flight == 0) {
    fetch->finished = true;
    fetch->stats.ok = !fetch->failed && fetch->pending.empty();
    fetch->stats.elapsed = transport_.now() - fetch->started;
    for (const auto& peer : peers_)
      fetch->stats.per_peer[peer.node] = peer.stats;
    transport_.metrics().end_span(fetch->span, fetch->stats.ok,
                                fetch->stats.bytes);
    fetch->done(fetch->stats);
    return;
  }

  while (!fetch->pending.empty() &&
         fetch->in_flight < Bitswap::kFetchWindow && !fetch->failed) {
    const multiformats::Cid next = fetch->pending.back();

    // Local hits (deduplicated chunks) resolve without network traffic.
    if (const auto local = bitswap_.store().get(next)) {
      fetch->pending.pop_back();
      if (next.content_codec() == multiformats::Multicodec::kDagPb) {
        if (const auto dag_node = merkledag::DagNode::decode(local->data)) {
          for (const auto& link : dag_node->links) {
            if (fetch->mark_new(link.cid))
              fetch->pending.push_back(link.cid);
            else
              transport_.metrics()
                  .counter("bitswap.duplicate_wants_suppressed")
                  .inc();
          }
        }
      }
      continue;
    }

    const auto& tried = fetch->failed_on[Fetch::key_of(next)];
    PeerState* peer = pick_peer(tried);
    if (peer == nullptr) {
      // Every session peer failed this block.
      fetch->failed = true;
      break;
    }
    fetch->pending.pop_back();
    ++fetch->in_flight;
    ++peer->in_flight;
    const sim::NodeId node = peer->node;
    const sim::Time sent_at = transport_.now();

    bitswap_.fetch_block(
        node, next,
        [this, fetch, next, node, sent_at](std::optional<Block> block) {
          --fetch->in_flight;
          for (auto& peer : peers_) {
            if (peer.node != node) continue;
            --peer.in_flight;
            const double latency_ms = sim::to_millis(
                transport_.now() - sent_at);
            if (block) {
              ++peer.stats.blocks;
              peer.stats.bytes += block->data.size();
              peer.stats.ewma_latency_ms =
                  peer.stats.ewma_latency_ms == 0.0
                      ? latency_ms
                      : 0.7 * peer.stats.ewma_latency_ms + 0.3 * latency_ms;
            } else {
              ++peer.stats.failures;
              if (peer.stats.failures >= 3) peer.dead = true;
            }
          }
          if (fetch->finished) return;

          if (!block) {
            // Requeue on the remaining peers (already in `enqueued`; a
            // retry is a re-dispatch of the same want, not a duplicate).
            fetch->failed_on[Fetch::key_of(next)].push_back(node);
            fetch->pending.push_back(next);
            ++fetch->stats.retried_blocks;
            transport_.metrics().counter("bitswap.session_retries").inc();
          } else {
            ++fetch->stats.blocks;
            fetch->stats.bytes += block->data.size();
            if (next.content_codec() == multiformats::Multicodec::kDagPb) {
              if (const auto dag_node =
                      merkledag::DagNode::decode(block->data)) {
                for (const auto& link : dag_node->links) {
                  if (fetch->mark_new(link.cid))
                    fetch->pending.push_back(link.cid);
                  else
                    transport_.metrics()
                        .counter("bitswap.duplicate_wants_suppressed")
                        .inc();
                }
              } else {
                fetch->failed = true;
              }
            }
          }
          pump(fetch);
        });
  }

  // If the window is empty but nothing could be scheduled, re-check the
  // termination condition (e.g. everything pending is unservable).
  if (fetch->in_flight == 0) pump(fetch);
}

}  // namespace ipfs::bitswap
