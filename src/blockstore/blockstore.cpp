#include "blockstore/blockstore.h"

namespace ipfs::blockstore {

Block Block::from_data(multiformats::Multicodec codec,
                       std::span<const std::uint8_t> data) {
  return Block{Cid::from_data(codec, data),
               std::vector<std::uint8_t>(data.begin(), data.end())};
}

PutStatus BlockStore::put(Block block) {
  if (!block.cid.hash().verifies(block.data)) return PutStatus::kCidMismatch;
  const auto [it, inserted] =
      blocks_.try_emplace(block.cid, std::move(block.data));
  if (!inserted) return PutStatus::kAlreadyPresent;
  total_bytes_ += it->second.size();
  return PutStatus::kStored;
}

std::optional<Block> BlockStore::get(const Cid& cid) const {
  const auto it = blocks_.find(cid);
  if (it == blocks_.end()) return std::nullopt;
  return Block{cid, it->second};
}

bool BlockStore::has(const Cid& cid) const { return blocks_.contains(cid); }

bool BlockStore::remove(const Cid& cid) {
  if (pinned(cid)) return false;
  const auto it = blocks_.find(cid);
  if (it == blocks_.end()) return false;
  total_bytes_ -= it->second.size();
  blocks_.erase(it);
  return true;
}

void BlockStore::pin(const Cid& cid) { pinned_.insert(cid); }

void BlockStore::unpin(const Cid& cid) { pinned_.erase(cid); }

bool BlockStore::pinned(const Cid& cid) const {
  return pinned_.contains(cid);
}

std::uint64_t BlockStore::collect_garbage() {
  std::uint64_t reclaimed = 0;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (pinned(it->first)) {
      ++it;
      continue;
    }
    reclaimed += it->second.size();
    total_bytes_ -= it->second.size();
    it = blocks_.erase(it);
  }
  return reclaimed;
}

LruBlockStore::LruBlockStore(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool LruBlockStore::put(Block block) {
  if (block.data.size() > capacity_) return false;

  const auto it = entries_.find(block.cid);
  if (it != entries_.end()) {
    // Refresh recency; content is immutable so the bytes are identical.
    recency_.erase(it->second.recency);
    recency_.push_front(block.cid);
    it->second.recency = recency_.begin();
    return true;
  }

  while (used_ + block.data.size() > capacity_) evict_one();

  const Cid cid = block.cid;  // keep the key valid while the block moves
  recency_.push_front(cid);
  used_ += block.data.size();
  entries_.emplace(cid, Entry{std::move(block), recency_.begin()});
  return true;
}

std::optional<Block> LruBlockStore::get(const Cid& cid) {
  const auto it = entries_.find(cid);
  if (it == entries_.end()) return std::nullopt;
  recency_.erase(it->second.recency);
  recency_.push_front(cid);
  it->second.recency = recency_.begin();
  return it->second.block;
}

bool LruBlockStore::has(const Cid& cid) const { return entries_.contains(cid); }

void LruBlockStore::evict_one() {
  const Cid victim = recency_.back();
  recency_.pop_back();
  const auto it = entries_.find(victim);
  used_ -= it->second.block.data.size();
  entries_.erase(it);
  ++evictions_;
}

}  // namespace ipfs::blockstore
