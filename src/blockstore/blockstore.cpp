#include "blockstore/blockstore.h"

namespace ipfs::blockstore {

Block Block::from_data(multiformats::Multicodec codec,
                       std::span<const std::uint8_t> data) {
  return Block{Cid::from_data(codec, data),
               std::vector<std::uint8_t>(data.begin(), data.end())};
}

PutStatus BlockStore::put(Block block) {
  return put(block.cid, std::make_shared<const std::vector<std::uint8_t>>(
                            std::move(block.data)));
}

PutStatus BlockStore::put(const Cid& cid, BlockData data) {
  if (data == nullptr || !cid.hash().verifies(*data))
    return PutStatus::kCidMismatch;
  const auto [it, inserted] = blocks_.try_emplace(cid, std::move(data));
  if (!inserted) return PutStatus::kAlreadyPresent;
  total_bytes_ += it->second->size();
  return PutStatus::kStored;
}

BlockData BlockStore::get(const Cid& cid) const {
  const auto it = blocks_.find(cid);
  if (it == blocks_.end()) return nullptr;
  return it->second;
}

bool BlockStore::has(const Cid& cid) const { return blocks_.contains(cid); }

bool BlockStore::remove(const Cid& cid) {
  if (pinned(cid)) return false;
  const auto it = blocks_.find(cid);
  if (it == blocks_.end()) return false;
  total_bytes_ -= it->second->size();
  blocks_.erase(it);
  return true;
}

void BlockStore::pin(const Cid& cid) { pinned_.insert(cid); }

void BlockStore::unpin(const Cid& cid) { pinned_.erase(cid); }

bool BlockStore::pinned(const Cid& cid) const {
  return pinned_.contains(cid);
}

std::uint64_t BlockStore::collect_garbage() {
  std::uint64_t reclaimed = 0;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (pinned(it->first)) {
      ++it;
      continue;
    }
    reclaimed += it->second->size();
    total_bytes_ -= it->second->size();
    it = blocks_.erase(it);
  }
  return reclaimed;
}

LruBlockStore::LruBlockStore(std::uint64_t capacity_bytes, LruConfig config)
    : capacity_(capacity_bytes),
      config_(config),
      protected_capacity_(static_cast<std::uint64_t>(
          static_cast<double>(capacity_bytes) * config.protected_share)) {
  if (config_.tinylfu) sketch_.emplace(config_.sketch_entries);
}

bool LruBlockStore::put(Block block) {
  return put(block.cid, std::make_shared<const std::vector<std::uint8_t>>(
                            std::move(block.data)));
}

bool LruBlockStore::put(const Cid& cid, BlockData data) {
  if (data == nullptr || data->size() > capacity_) return false;

  const std::uint64_t key_hash = sketch_ ? cid_hash64(cid) : 0;
  if (sketch_) sketch_->record(key_hash);

  const auto it = entries_.find(cid);
  if (it != entries_.end()) {
    // Content is immutable so the bytes are identical: a re-put is a hit
    // (refresh + promote) and must leave the byte accounting untouched.
    touch(cid, it->second);
    return true;
  }

  if (!make_room(data->size(), key_hash)) return false;

  used_ += data->size();
  probation_.push_front(cid);
  entries_.emplace(cid, Entry{std::move(data), probation_.begin(), false});
  return true;
}

BlockData LruBlockStore::get(const Cid& cid) {
  const auto it = entries_.find(cid);
  if (sketch_) sketch_->record(cid_hash64(cid));
  if (it == entries_.end()) return nullptr;
  touch(cid, it->second);
  return it->second.data;
}

bool LruBlockStore::has(const Cid& cid) const { return entries_.contains(cid); }

void LruBlockStore::touch(const Cid& cid, Entry& entry) {
  if (entry.protected_segment) {
    protected_.erase(entry.recency);
    protected_.push_front(cid);
    entry.recency = protected_.begin();
    return;
  }
  // Promotion: probation -> protected. Protected overflow demotes its
  // coldest entries back to probation (MRU side: they were hit recently,
  // just not as recently as the rest of the protected segment).
  probation_.erase(entry.recency);
  protected_.push_front(cid);
  entry.recency = protected_.begin();
  entry.protected_segment = true;
  protected_bytes_ += entry.data->size();
  while (protected_bytes_ > protected_capacity_ && !protected_.empty()) {
    const Cid demoted = protected_.back();
    Entry& demoted_entry = entries_.find(demoted)->second;
    if (!demoted_entry.protected_segment) break;  // defensive; cannot happen
    protected_.pop_back();
    probation_.push_front(demoted);
    demoted_entry.recency = probation_.begin();
    demoted_entry.protected_segment = false;
    protected_bytes_ -= demoted_entry.data->size();
    if (demoted == cid) break;  // the promoted entry itself overflowed
  }
}

bool LruBlockStore::make_room(std::uint64_t incoming_size,
                              std::uint64_t candidate_hash) {
  while (used_ + incoming_size > capacity_) {
    if (sketch_) {
      const Cid& victim =
          !probation_.empty() ? probation_.back() : protected_.back();
      // TinyLFU admission: only evict for a candidate at least as hot as
      // the victim; otherwise the one-hit wonder is the one refused.
      if (sketch_->estimate(candidate_hash) <
          sketch_->estimate(cid_hash64(victim))) {
        ++admission_rejections_;
        return false;
      }
    }
    evict_one();
  }
  return true;
}

void LruBlockStore::evict_one() {
  // Probationary entries go first; the protected segment is only drained
  // when probation is empty.
  const bool from_probation = !probation_.empty();
  std::list<Cid>& segment = from_probation ? probation_ : protected_;
  const Cid victim = segment.back();
  segment.pop_back();
  const auto it = entries_.find(victim);
  used_ -= it->second.data->size();
  if (!from_probation) protected_bytes_ -= it->second.data->size();
  entries_.erase(it);
  ++evictions_;
}

}  // namespace ipfs::blockstore
