// Write-behind front for PersistentBlockStore (docs/BLOCKSTORE.md).
//
// put() verifies the CID and parks the block in a bounded in-memory
// queue — no disk I/O, no fsync. The queue drains to the persistent
// store in batches (flush_batch_blocks per trigger, or earlier under
// queue_limit_bytes backpressure), and one flush() syncs the whole
// batch with a single group fsync per dirty segment file. That batching
// is where the >=5x put-throughput win over fsync-per-put comes from
// (bench_ablation_dataplane).
//
// Durability contract ("acked"): a block is guaranteed to survive
// handle_crash()/power loss only once a flush() has completed after its
// put() returned kStored. Queued-but-unflushed blocks are explicitly at
// risk: handle_crash() drops the queue, then lets the base store cut
// its un-fsynced tail. The simfuzz crash-during-flush invariant checks
// exactly this line: every acked put is readable after restart.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "blockstore/persist/persistent_store.h"

namespace ipfs::blockstore::persist {

struct AsyncConfig {
  // Drain the queue to the base store once this many blocks are queued.
  // Draining appends records but does NOT fsync; only flush() does.
  std::size_t flush_batch_blocks = 64;
  // Backpressure bound: a put that would push the queue past this many
  // payload bytes forces a full flush() first (synchronous fsync).
  std::uint64_t queue_limit_bytes = 64 * 1024 * 1024;
  // Counter sink (blockstore.flush.* — docs/OBSERVABILITY.md).
  metrics::Registry* metrics = nullptr;
};

class AsyncBlockStore final : public BlockStore {
 public:
  AsyncBlockStore(std::unique_ptr<PersistentBlockStore> base,
                  AsyncConfig config = {});

  using BlockStore::put;
  PutStatus put(const Cid& cid, BlockData data) override;
  BlockData get(const Cid& cid) const override;  // read-through: queue first
  bool has(const Cid& cid) const override;
  bool remove(const Cid& cid) override;

  void pin(const Cid& cid) override { base_->pin(cid); }
  void unpin(const Cid& cid) override { base_->unpin(cid); }
  bool pinned(const Cid& cid) const override { return base_->pinned(cid); }

  // Drains the queue first so pinned-but-queued blocks are judged by the
  // base store, then compacts there.
  std::uint64_t collect_garbage() override;

  std::size_t block_count() const override {
    return queue_.size() + base_->block_count();
  }
  std::uint64_t total_bytes() const override {
    return queue_bytes_ + base_->total_bytes();
  }

  // Drains the queue and fsyncs: everything put() before this call is
  // durable (acked) once it returns.
  void flush() override;

  // Power loss: the in-memory queue is gone, and the base store loses
  // its un-fsynced tail too.
  void handle_crash() override;

  PersistentBlockStore& base() { return *base_; }
  std::size_t queued_blocks() const { return queue_.size(); }
  std::uint64_t queued_bytes() const { return queue_bytes_; }

 private:
  // Appends the queued blocks to the base store (no fsync) and empties
  // the queue.
  void drain();

  std::unique_ptr<PersistentBlockStore> base_;
  AsyncConfig config_;
  std::map<Cid, BlockData> queue_;
  std::deque<Cid> queue_order_;  // FIFO: preserves append order on drain
  std::uint64_t queue_bytes_ = 0;
};

}  // namespace ipfs::blockstore::persist
