// Byte-level storage backend for the persistent blockstore: a tiny
// append-only file abstraction (docs/BLOCKSTORE.md).
//
// Two implementations:
//
//   MemStorage   — in-memory files with an explicit synced-bytes
//                  watermark per file. drop_unsynced() simulates power
//                  loss: everything appended since the last sync() is
//                  truncated at a seeded-random byte (possibly tearing a
//                  record mid-write), which is what the crash-during-
//                  flush fuzz sweep exercises deterministically.
//   PosixStorage — real files under a directory; append/pread/fsync/
//                  ftruncate/unlink. What ipfsd --store-dir runs on.
//
// PersistentBlockStore is written against this interface only, so the
// exact same recovery code path handles a simulated torn record and a
// real one.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace ipfs::blockstore::persist {

class Storage {
 public:
  virtual ~Storage() = default;

  // Names of existing files, lexicographically sorted.
  virtual std::vector<std::string> list() const = 0;
  // Current size in bytes; 0 for a missing file.
  virtual std::uint64_t size(const std::string& name) const = 0;
  // Appends to `name`, creating it if missing.
  virtual bool append(const std::string& name,
                      std::span<const std::uint8_t> data) = 0;
  // Reads exactly [offset, offset+len) into `out` (resized). False when
  // the range walks past the end of the file.
  virtual bool read_at(const std::string& name, std::uint64_t offset,
                       std::uint64_t len,
                       std::vector<std::uint8_t>& out) const = 0;
  virtual bool truncate(const std::string& name, std::uint64_t new_size) = 0;
  virtual bool remove(const std::string& name) = 0;
  // Durability barrier for one file (fsync). Data appended before a
  // sync() survives drop_unsynced()/power loss; later bytes may not.
  virtual bool sync(const std::string& name) = 0;

  // Power-loss simulation: for every file, bytes appended since its last
  // sync() are cut at a seeded-random point. Real backends cannot
  // simulate this and leave files alone (their tail state after a real
  // crash is whatever the kernel persisted).
  virtual void drop_unsynced(std::uint64_t seed) { (void)seed; }

  // Convenience: whole-file read.
  bool read_all(const std::string& name, std::vector<std::uint8_t>& out) const {
    return read_at(name, 0, size(name), out);
  }
};

class MemStorage final : public Storage {
 public:
  std::vector<std::string> list() const override;
  std::uint64_t size(const std::string& name) const override;
  bool append(const std::string& name,
              std::span<const std::uint8_t> data) override;
  bool read_at(const std::string& name, std::uint64_t offset,
               std::uint64_t len,
               std::vector<std::uint8_t>& out) const override;
  bool truncate(const std::string& name, std::uint64_t new_size) override;
  bool remove(const std::string& name) override;
  bool sync(const std::string& name) override;
  void drop_unsynced(std::uint64_t seed) override;

  std::uint64_t sync_calls() const { return sync_calls_; }
  // Bytes currently past the durability watermark (would be at risk in a
  // crash right now).
  std::uint64_t unsynced_bytes() const;

 private:
  struct File {
    std::vector<std::uint8_t> bytes;
    std::uint64_t synced = 0;  // durable prefix length
  };
  std::map<std::string, File> files_;
  std::uint64_t sync_calls_ = 0;
};

class PosixStorage final : public Storage {
 public:
  // Creates `directory` (and parents) if missing.
  explicit PosixStorage(std::string directory);
  ~PosixStorage() override;

  std::vector<std::string> list() const override;
  std::uint64_t size(const std::string& name) const override;
  bool append(const std::string& name,
              std::span<const std::uint8_t> data) override;
  bool read_at(const std::string& name, std::uint64_t offset,
               std::uint64_t len,
               std::vector<std::uint8_t>& out) const override;
  bool truncate(const std::string& name, std::uint64_t new_size) override;
  bool remove(const std::string& name) override;
  bool sync(const std::string& name) override;

  const std::string& directory() const { return directory_; }

 private:
  int fd_for(const std::string& name, bool create) const;
  std::string path_of(const std::string& name) const;

  std::string directory_;
  // Open-descriptor cache: segment files are appended to and fsynced
  // many times; one open() each is plenty.
  mutable std::map<std::string, int> fds_;
};

}  // namespace ipfs::blockstore::persist
