// Log-structured, content-addressed on-disk block store
// (docs/BLOCKSTORE.md). The tentpole of ISSUE 9's storage half.
//
// Layout: append-only segment files (`seg-00000000.log`, rolled at
// `segment_bytes`) holding CRC-checked put/remove records, plus a
// separate pin journal (`pins.log`). Nothing is ever overwritten in
// place — a put appends, a remove appends a tombstone, and GC compacts
// by rewriting survivors into fresh segments.
//
// The Cid -> (segment, offset, length) index lives in memory and is
// rebuilt by scanning the segments on open. A record whose CRC or
// header fails mid-scan marks the crash frontier of that file: the file
// is truncated there (a torn final record is expected after power loss,
// not fatal) and recovery continues with the next segment.
//
// Durability contract: appended records are crash-safe only after
// flush() (fsync of the dirty files). The AsyncBlockStore front
// (async_store.h) builds its write-behind/acked semantics on exactly
// this line.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>

#include "blockstore/blockstore.h"
#include "blockstore/persist/storage.h"
#include "metrics/metrics.h"

namespace ipfs::blockstore::persist {

struct PersistConfig {
  // Roll to a fresh segment file once the current one reaches this size.
  std::uint64_t segment_bytes = 8 * 1024 * 1024;
  // Seed for the simulated power-loss cut points (MemStorage backends);
  // mixed with a per-crash counter so repeated crashes differ.
  std::uint64_t crash_seed = 0;
  // Counter sink (blockstore.* — docs/OBSERVABILITY.md); may be null.
  metrics::Registry* metrics = nullptr;
};

class PersistentBlockStore : public BlockStore {
 public:
  // Opens (or creates) the store: scans the segment files and pin
  // journal, rebuilding the in-memory index. Torn tails are truncated.
  PersistentBlockStore(std::unique_ptr<Storage> storage,
                       PersistConfig config = {});

  using BlockStore::put;
  PutStatus put(const Cid& cid, BlockData data) override;
  BlockData get(const Cid& cid) const override;
  bool has(const Cid& cid) const override;
  bool remove(const Cid& cid) override;

  void pin(const Cid& cid) override;
  void unpin(const Cid& cid) override;
  bool pinned(const Cid& cid) const override;

  // Drops every unpinned block from the index, then compacts: survivors
  // are rewritten into fresh segments and the old files deleted, so the
  // reclaimed payload bytes really leave the storage. Returns the
  // payload bytes of the dropped blocks.
  std::uint64_t collect_garbage() override;

  std::size_t block_count() const override { return index_.size(); }
  std::uint64_t total_bytes() const override { return total_bytes_; }

  // Group durability barrier: one sync per dirty file, however many
  // records landed since the last flush.
  void flush() override;

  // Power loss: un-synced tails are cut at a seeded point (MemStorage),
  // then the store reopens from what survived.
  void handle_crash() override;

  // --- Introspection (tests, benches, docs/BLOCKSTORE.md) -----------------
  Storage& storage() { return *storage_; }
  std::size_t segment_count() const { return segments_.size(); }
  // Bytes of torn/corrupt log truncated by the most recent open.
  std::uint64_t recovered_truncated_bytes() const {
    return recovered_truncated_bytes_;
  }
  std::uint64_t live_segment_bytes() const;

 private:
  struct Location {
    std::uint32_t segment = 0;
    std::uint64_t offset = 0;  // of the payload, not the record header
    std::uint32_t length = 0;
  };

  static std::string segment_name(std::uint32_t id);
  metrics::Counter* counter(const char* name) const;
  void append_record(const std::string& file, std::uint8_t kind,
                     const Cid& cid, std::span<const std::uint8_t> data);
  void roll_segment_if_full();
  // Scans one log file, applying records via `apply`; truncates at the
  // first torn/corrupt record. Returns bytes truncated.
  std::uint64_t scan_log(
      const std::string& file,
      const std::function<void(std::uint8_t kind, Cid cid,
                               std::uint64_t payload_offset,
                               std::uint32_t payload_len)>& apply);
  void open();

  std::unique_ptr<Storage> storage_;
  PersistConfig config_;
  std::map<Cid, Location> index_;
  std::set<Cid> pinned_;
  std::set<std::uint32_t> segments_;  // existing segment ids, ascending
  std::uint32_t current_segment_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::set<std::string> dirty_files_;  // appended since last flush
  std::uint64_t recovered_truncated_bytes_ = 0;
  std::uint64_t crashes_ = 0;
};

}  // namespace ipfs::blockstore::persist
