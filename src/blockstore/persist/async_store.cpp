#include "blockstore/persist/async_store.h"

namespace ipfs::blockstore::persist {

AsyncBlockStore::AsyncBlockStore(std::unique_ptr<PersistentBlockStore> base,
                                 AsyncConfig config)
    : base_(std::move(base)), config_(config) {}

PutStatus AsyncBlockStore::put(const Cid& cid, BlockData data) {
  if (data == nullptr || !cid.hash().verifies(*data))
    return PutStatus::kCidMismatch;
  if (queue_.contains(cid) || base_->has(cid))
    return PutStatus::kAlreadyPresent;

  if (config_.queue_limit_bytes > 0 &&
      queue_bytes_ + data->size() > config_.queue_limit_bytes) {
    flush();  // backpressure: make room durably before accepting more
  }

  queue_bytes_ += data->size();
  queue_order_.push_back(cid);
  queue_.emplace(cid, std::move(data));
  if (config_.flush_batch_blocks > 0 &&
      queue_.size() >= config_.flush_batch_blocks) {
    drain();  // append the batch; fsync still deferred to flush()
  }
  return PutStatus::kStored;
}

BlockData AsyncBlockStore::get(const Cid& cid) const {
  const auto it = queue_.find(cid);
  if (it != queue_.end()) return it->second;
  return base_->get(cid);
}

bool AsyncBlockStore::has(const Cid& cid) const {
  return queue_.contains(cid) || base_->has(cid);
}

bool AsyncBlockStore::remove(const Cid& cid) {
  if (pinned(cid)) return false;
  const auto it = queue_.find(cid);
  if (it != queue_.end()) {
    queue_bytes_ -= it->second->size();
    queue_.erase(it);
    for (auto order = queue_order_.begin(); order != queue_order_.end();
         ++order) {
      if (*order == cid) {
        queue_order_.erase(order);
        break;
      }
    }
    return true;
  }
  return base_->remove(cid);
}

std::uint64_t AsyncBlockStore::collect_garbage() {
  flush();
  return base_->collect_garbage();
}

void AsyncBlockStore::drain() {
  if (queue_.empty()) return;
  const std::size_t blocks = queue_.size();
  const std::uint64_t bytes = queue_bytes_;
  for (const Cid& cid : queue_order_) {
    const auto it = queue_.find(cid);
    if (it == queue_.end()) continue;  // removed while queued
    base_->put(cid, it->second);
  }
  queue_.clear();
  queue_order_.clear();
  queue_bytes_ = 0;
  if (config_.metrics) {
    config_.metrics->counter("blockstore.flush.batches").inc();
    config_.metrics->counter("blockstore.flush.blocks").inc(blocks);
    config_.metrics->counter("blockstore.flush.bytes").inc(bytes);
  }
}

void AsyncBlockStore::flush() {
  drain();
  base_->flush();
}

void AsyncBlockStore::handle_crash() {
  // Queued blocks never reached the log; they are simply gone.
  queue_.clear();
  queue_order_.clear();
  queue_bytes_ = 0;
  base_->handle_crash();
}

}  // namespace ipfs::blockstore::persist
