#include "blockstore/persist/persistent_store.h"

#include <algorithm>
#include <array>
#include <cstdio>

namespace ipfs::blockstore::persist {
namespace {

constexpr std::uint32_t kRecordMagic = 0x4B504249;  // "IPBK"
constexpr std::size_t kHeaderBytes = 17;  // magic + kind + 2 lengths + crc
constexpr std::uint8_t kKindPut = 1;
constexpr std::uint8_t kKindRemove = 2;
constexpr std::uint8_t kKindPin = 3;
constexpr std::uint8_t kKindUnpin = 4;
// Sanity caps on untrusted (possibly corrupt) length fields: anything
// beyond these marks the crash frontier, same as a bad CRC.
constexpr std::uint32_t kMaxCidBytes = 256;
constexpr std::uint32_t kMaxDataBytes = 64u * 1024 * 1024;
constexpr const char* kPinJournal = "pins.log";

std::uint32_t crc32(std::span<const std::uint8_t> first,
                    std::span<const std::uint8_t> second = {}) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const auto part : {first, second})
    for (const std::uint8_t byte : part)
      crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

PersistentBlockStore::PersistentBlockStore(std::unique_ptr<Storage> storage,
                                           PersistConfig config)
    : storage_(std::move(storage)), config_(config) {
  open();
}

std::string PersistentBlockStore::segment_name(std::uint32_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "seg-%08u.log", id);
  return buf;
}

metrics::Counter* PersistentBlockStore::counter(const char* name) const {
  return config_.metrics ? &config_.metrics->counter(name) : nullptr;
}

void PersistentBlockStore::append_record(const std::string& file,
                                         std::uint8_t kind, const Cid& cid,
                                         std::span<const std::uint8_t> data) {
  const auto cid_bytes = cid.encode();
  std::vector<std::uint8_t> record;
  record.reserve(kHeaderBytes + cid_bytes.size() + data.size());
  put_u32(record, kRecordMagic);
  record.push_back(kind);
  put_u32(record, static_cast<std::uint32_t>(cid_bytes.size()));
  put_u32(record, static_cast<std::uint32_t>(data.size()));
  put_u32(record, crc32(cid_bytes, data));
  record.insert(record.end(), cid_bytes.begin(), cid_bytes.end());
  record.insert(record.end(), data.begin(), data.end());
  storage_->append(file, record);
  dirty_files_.insert(file);
}

void PersistentBlockStore::roll_segment_if_full() {
  const std::string current = segment_name(current_segment_);
  if (storage_->size(current) >= config_.segment_bytes &&
      segments_.contains(current_segment_)) {
    ++current_segment_;
  }
}

PutStatus PersistentBlockStore::put(const Cid& cid, BlockData data) {
  if (data == nullptr || !cid.hash().verifies(*data))
    return PutStatus::kCidMismatch;
  if (index_.contains(cid)) return PutStatus::kAlreadyPresent;

  roll_segment_if_full();
  const std::string file = segment_name(current_segment_);
  const std::uint64_t record_start = storage_->size(file);
  append_record(file, kKindPut, cid, *data);
  segments_.insert(current_segment_);

  Location loc;
  loc.segment = current_segment_;
  loc.offset = record_start + kHeaderBytes + cid.encode().size();
  loc.length = static_cast<std::uint32_t>(data->size());
  index_.emplace(cid, loc);
  total_bytes_ += data->size();
  if (auto* c = counter("blockstore.put.blocks")) c->inc();
  if (auto* c = counter("blockstore.put.bytes")) c->inc(data->size());
  return PutStatus::kStored;
}

BlockData PersistentBlockStore::get(const Cid& cid) const {
  const auto it = index_.find(cid);
  if (it == index_.end()) return nullptr;
  auto payload = std::make_shared<std::vector<std::uint8_t>>();
  if (!storage_->read_at(segment_name(it->second.segment), it->second.offset,
                         it->second.length, *payload))
    return nullptr;
  if (auto* c = counter("blockstore.read.blocks")) c->inc();
  return payload;
}

bool PersistentBlockStore::has(const Cid& cid) const {
  return index_.contains(cid);
}

bool PersistentBlockStore::remove(const Cid& cid) {
  if (pinned(cid)) return false;
  const auto it = index_.find(cid);
  if (it == index_.end()) return false;
  roll_segment_if_full();
  const std::string file = segment_name(current_segment_);
  append_record(file, kKindRemove, cid, {});
  segments_.insert(current_segment_);
  total_bytes_ -= it->second.length;
  index_.erase(it);
  return true;
}

void PersistentBlockStore::pin(const Cid& cid) {
  if (pinned_.insert(cid).second) append_record(kPinJournal, kKindPin, cid, {});
}

void PersistentBlockStore::unpin(const Cid& cid) {
  if (pinned_.erase(cid) > 0) append_record(kPinJournal, kKindUnpin, cid, {});
}

bool PersistentBlockStore::pinned(const Cid& cid) const {
  return pinned_.contains(cid);
}

std::uint64_t PersistentBlockStore::collect_garbage() {
  // Phase 1: drop unpinned entries from the index.
  std::uint64_t reclaimed = 0;
  for (auto it = index_.begin(); it != index_.end();) {
    if (pinned_.contains(it->first)) {
      ++it;
      continue;
    }
    reclaimed += it->second.length;
    total_bytes_ -= it->second.length;
    it = index_.erase(it);
  }

  // Phase 2: compaction — rewrite the survivors into fresh segments so
  // the dead records' bytes actually leave the storage. Payloads are
  // pulled one at a time; peak extra memory is one block.
  std::vector<std::pair<Cid, std::vector<std::uint8_t>>> survivors;
  survivors.reserve(index_.size());
  for (const auto& [cid, loc] : index_) {
    std::vector<std::uint8_t> payload;
    if (storage_->read_at(segment_name(loc.segment), loc.offset, loc.length,
                          payload))
      survivors.emplace_back(cid, std::move(payload));
  }
  for (const std::uint32_t id : segments_)
    storage_->remove(segment_name(id));
  for (const std::uint32_t id : segments_) {
    dirty_files_.erase(segment_name(id));
  }
  segments_.clear();
  ++current_segment_;  // never reuse a deleted segment's name
  index_.clear();
  total_bytes_ = 0;

  for (auto& [cid, payload] : survivors) {
    roll_segment_if_full();
    const std::string file = segment_name(current_segment_);
    const std::uint64_t record_start = storage_->size(file);
    append_record(file, kKindPut, cid, payload);
    segments_.insert(current_segment_);
    Location loc;
    loc.segment = current_segment_;
    loc.offset = record_start + kHeaderBytes + cid.encode().size();
    loc.length = static_cast<std::uint32_t>(payload.size());
    index_.emplace(cid, loc);
    total_bytes_ += payload.size();
  }

  // The pin journal compacts too: one pin record per live pin.
  storage_->remove(kPinJournal);
  dirty_files_.erase(kPinJournal);
  for (const Cid& cid : pinned_) append_record(kPinJournal, kKindPin, cid, {});

  flush();
  if (auto* c = counter("blockstore.compact.runs")) c->inc();
  if (auto* c = counter("blockstore.compact.reclaimed_bytes"))
    c->inc(reclaimed);
  return reclaimed;
}

void PersistentBlockStore::flush() {
  for (const auto& file : dirty_files_) {
    storage_->sync(file);
    if (auto* c = counter("blockstore.fsync.count")) c->inc();
  }
  dirty_files_.clear();
}

std::uint64_t PersistentBlockStore::live_segment_bytes() const {
  std::uint64_t total = 0;
  for (const std::uint32_t id : segments_)
    total += storage_->size(segment_name(id));
  return total;
}

std::uint64_t PersistentBlockStore::scan_log(
    const std::string& file,
    const std::function<void(std::uint8_t, Cid, std::uint64_t,
                             std::uint32_t)>& apply) {
  std::vector<std::uint8_t> bytes;
  if (!storage_->read_all(file, bytes)) return 0;
  std::uint64_t pos = 0;
  while (bytes.size() - pos >= kHeaderBytes) {
    const std::uint8_t* header = bytes.data() + pos;
    const std::uint32_t magic = read_u32(header);
    const std::uint8_t kind = header[4];
    const std::uint32_t cid_len = read_u32(header + 5);
    const std::uint32_t data_len = read_u32(header + 9);
    const std::uint32_t crc = read_u32(header + 13);
    if (magic != kRecordMagic || kind < kKindPut || kind > kKindUnpin ||
        cid_len > kMaxCidBytes || data_len > kMaxDataBytes)
      break;
    const std::uint64_t body = std::uint64_t(cid_len) + data_len;
    if (bytes.size() - pos - kHeaderBytes < body) break;  // torn tail
    const std::span<const std::uint8_t> cid_bytes(
        bytes.data() + pos + kHeaderBytes, cid_len);
    const std::span<const std::uint8_t> payload(
        bytes.data() + pos + kHeaderBytes + cid_len, data_len);
    if (crc32(cid_bytes, payload) != crc) break;  // torn/corrupt record
    auto cid = Cid::decode(cid_bytes);
    if (!cid) break;
    apply(kind, std::move(*cid), pos + kHeaderBytes + cid_len, data_len);
    pos += kHeaderBytes + body;
  }
  const std::uint64_t truncated = bytes.size() - pos;
  if (truncated > 0) storage_->truncate(file, pos);
  return truncated;
}

void PersistentBlockStore::open() {
  index_.clear();
  pinned_.clear();
  segments_.clear();
  total_bytes_ = 0;
  dirty_files_.clear();
  recovered_truncated_bytes_ = 0;

  for (const auto& name : storage_->list()) {
    unsigned id = 0;
    if (std::sscanf(name.c_str(), "seg-%8u.log", &id) != 1) continue;
    segments_.insert(id);
  }
  // std::set iterates ascending: segments replay in append order.
  for (const std::uint32_t id : segments_) {
    const std::string file = segment_name(id);
    recovered_truncated_bytes_ += scan_log(
        file, [this, id](std::uint8_t kind, Cid cid, std::uint64_t offset,
                         std::uint32_t len) {
          if (kind == kKindPut) {
            Location loc;
            loc.segment = id;
            loc.offset = offset;
            loc.length = len;
            const auto [it, inserted] = index_.emplace(std::move(cid), loc);
            if (inserted) {
              total_bytes_ += len;
            } else {
              // A later duplicate put of the same CID (possible when a
              // crash lost the index but not the log): newest wins.
              total_bytes_ -= it->second.length;
              it->second = loc;
              total_bytes_ += len;
            }
          } else if (kind == kKindRemove) {
            const auto it = index_.find(cid);
            if (it != index_.end()) {
              total_bytes_ -= it->second.length;
              index_.erase(it);
            }
          }
        });
  }
  recovered_truncated_bytes_ +=
      scan_log(kPinJournal, [this](std::uint8_t kind, Cid cid, std::uint64_t,
                                   std::uint32_t) {
        if (kind == kKindPin) pinned_.insert(std::move(cid));
        else if (kind == kKindUnpin) pinned_.erase(cid);
      });
  // A truncated segment may be mid-range; never append into old files.
  current_segment_ = segments_.empty() ? 0 : *segments_.rbegin() + 1;

  if (auto* c = counter("blockstore.recover.blocks")) c->inc(index_.size());
  if (auto* c = counter("blockstore.recover.truncated_bytes"))
    c->inc(recovered_truncated_bytes_);
}

void PersistentBlockStore::handle_crash() {
  ++crashes_;
  storage_->drop_unsynced(mix64(config_.crash_seed, crashes_));
  open();
}

}  // namespace ipfs::blockstore::persist
