#include "blockstore/persist/storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>

namespace ipfs::blockstore::persist {

// ---- MemStorage -----------------------------------------------------------

std::vector<std::string> MemStorage::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::uint64_t MemStorage::size(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.bytes.size();
}

bool MemStorage::append(const std::string& name,
                        std::span<const std::uint8_t> data) {
  auto& file = files_[name];
  file.bytes.insert(file.bytes.end(), data.begin(), data.end());
  return true;
}

bool MemStorage::read_at(const std::string& name, std::uint64_t offset,
                         std::uint64_t len,
                         std::vector<std::uint8_t>& out) const {
  const auto it = files_.find(name);
  if (it == files_.end()) return false;
  const auto& bytes = it->second.bytes;
  if (offset > bytes.size() || bytes.size() - offset < len) return false;
  out.assign(bytes.begin() + static_cast<std::ptrdiff_t>(offset),
             bytes.begin() + static_cast<std::ptrdiff_t>(offset + len));
  return true;
}

bool MemStorage::truncate(const std::string& name, std::uint64_t new_size) {
  const auto it = files_.find(name);
  if (it == files_.end()) return false;
  auto& file = it->second;
  if (new_size > file.bytes.size()) return false;
  file.bytes.resize(new_size);
  file.synced = std::min<std::uint64_t>(file.synced, new_size);
  return true;
}

bool MemStorage::remove(const std::string& name) {
  return files_.erase(name) > 0;
}

bool MemStorage::sync(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) return false;
  it->second.synced = it->second.bytes.size();
  ++sync_calls_;
  return true;
}

std::uint64_t MemStorage::unsynced_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, file] : files_)
    total += file.bytes.size() - file.synced;
  return total;
}

void MemStorage::drop_unsynced(std::uint64_t seed) {
  // splitmix64 per file, keyed by the seed and the file name, so the cut
  // point is deterministic for a given (seed, name) pair but independent
  // across files — one crash can tear several tails differently.
  for (auto& [name, file] : files_) {
    const std::uint64_t at_risk = file.bytes.size() - file.synced;
    if (at_risk == 0) continue;
    std::uint64_t x = seed ^ 0x9e3779b97f4a7c15ULL;
    for (const char c : name) x = (x ^ std::uint64_t(std::uint8_t(c))) *
                                  0xff51afd7ed558ccdULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    // Keep a random prefix [0, at_risk] of the unsynced tail: 0 models
    // "nothing hit the platter", at_risk-1 a torn final record.
    const std::uint64_t keep = x % (at_risk + 1);
    file.bytes.resize(file.synced + keep);
  }
}

// ---- PosixStorage ---------------------------------------------------------

PosixStorage::PosixStorage(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

PosixStorage::~PosixStorage() {
  for (const auto& [name, fd] : fds_)
    if (fd >= 0) ::close(fd);
}

std::string PosixStorage::path_of(const std::string& name) const {
  return directory_ + "/" + name;
}

int PosixStorage::fd_for(const std::string& name, bool create) const {
  const auto it = fds_.find(name);
  if (it != fds_.end()) return it->second;
  const int flags = O_RDWR | O_CLOEXEC | (create ? O_CREAT : 0);
  const int fd = ::open(path_of(name).c_str(), flags, 0644);
  if (fd < 0) return -1;
  fds_[name] = fd;
  return fd;
}

std::vector<std::string> PosixStorage::list() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename());
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t PosixStorage::size(const std::string& name) const {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path_of(name), ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

bool PosixStorage::append(const std::string& name,
                          std::span<const std::uint8_t> data) {
  const int fd = fd_for(name, true);
  if (fd < 0) return false;
  std::uint64_t offset = size(name);
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::pwrite(fd, data.data() + written, data.size() - written,
                 static_cast<off_t>(offset + written));
    if (n <= 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool PosixStorage::read_at(const std::string& name, std::uint64_t offset,
                           std::uint64_t len,
                           std::vector<std::uint8_t>& out) const {
  const int fd = fd_for(name, false);
  if (fd < 0) return false;
  out.resize(len);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, out.data() + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool PosixStorage::truncate(const std::string& name, std::uint64_t new_size) {
  const int fd = fd_for(name, false);
  if (fd < 0) return false;
  return ::ftruncate(fd, static_cast<off_t>(new_size)) == 0;
}

bool PosixStorage::remove(const std::string& name) {
  const auto it = fds_.find(name);
  if (it != fds_.end()) {
    ::close(it->second);
    fds_.erase(it);
  }
  return ::unlink(path_of(name).c_str()) == 0;
}

bool PosixStorage::sync(const std::string& name) {
  const int fd = fd_for(name, false);
  if (fd < 0) return false;
  return ::fsync(fd) == 0;
}

}  // namespace ipfs::blockstore::persist
