#include "blockstore/store_config.h"

#include "blockstore/persist/async_store.h"
#include "blockstore/persist/persistent_store.h"

namespace ipfs::blockstore {

std::unique_ptr<BlockStore> make_store(const StoreConfig& config,
                                       metrics::Registry* metrics) {
  if (config.backend == StoreConfig::Backend::kMemory)
    return std::make_unique<BlockStore>();

  std::unique_ptr<persist::Storage> storage;
  if (config.directory.empty()) {
    storage = std::make_unique<persist::MemStorage>();
  } else {
    storage = std::make_unique<persist::PosixStorage>(config.directory);
  }

  persist::PersistConfig persist_config;
  persist_config.segment_bytes = config.segment_bytes;
  persist_config.crash_seed = config.crash_seed;
  persist_config.metrics = metrics;
  auto base = std::make_unique<persist::PersistentBlockStore>(
      std::move(storage), persist_config);

  if (config.backend == StoreConfig::Backend::kPersistentSync) return base;

  persist::AsyncConfig async_config;
  async_config.flush_batch_blocks = config.flush_batch_blocks;
  async_config.queue_limit_bytes = config.queue_limit_bytes;
  async_config.metrics = metrics;
  return std::make_unique<persist::AsyncBlockStore>(std::move(base),
                                                    async_config);
}

}  // namespace ipfs::blockstore
