// Content-addressed block storage. Every IPFS node owns a BlockStore; the
// gateway additionally uses an LRU-capped store as its nginx-style cache.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "blockstore/tinylfu.h"
#include "multiformats/cid.h"

namespace ipfs::blockstore {

using multiformats::Cid;

// Shared-ownership block payload. Content is immutable (CID-addressed),
// so cache tiers — a replica's edge cache and the fleet's shared origin
// tier — alias one allocation instead of copying half-megabyte objects
// on every hit.
using BlockData = std::shared_ptr<const std::vector<std::uint8_t>>;

struct Block {
  Cid cid;
  std::vector<std::uint8_t> data;

  // Builds a block from raw bytes, deriving its CID (sha2-256, given codec).
  static Block from_data(multiformats::Multicodec codec,
                         std::span<const std::uint8_t> data);
};

enum class PutStatus { kStored, kAlreadyPresent, kCidMismatch };

// Content-addressed store with pinning and GC, mirroring the go-ipfs
// node store semantics the paper relies on (Section 3.4). The base class
// is the in-memory implementation every node uses by default; the
// virtual surface lets persistent backends (blockstore/persist) slot in
// behind the same interface — node, Bitswap and merkledag code holds a
// BlockStore& and never knows which backend serves it.
class BlockStore {
 public:
  BlockStore() = default;
  virtual ~BlockStore() = default;

  // Verifies the CID against the data before storing.
  virtual PutStatus put(Block block);
  // Shared-ownership insert: callers that already hold the payload as
  // BlockData (Bitswap responses, cache tiers) store it without a copy.
  // Verifies like put(Block); null data is rejected as a mismatch.
  virtual PutStatus put(const Cid& cid, BlockData data);

  // Shared payload, nullptr on miss. Never copies: every hit aliases the
  // allocation made at insert time (content is immutable by CID).
  virtual BlockData get(const Cid& cid) const;
  virtual bool has(const Cid& cid) const;
  virtual bool remove(const Cid& cid);  // refuses to remove pinned blocks

  virtual void pin(const Cid& cid);
  virtual void unpin(const Cid& cid);
  virtual bool pinned(const Cid& cid) const;

  // Drops every unpinned block; returns bytes reclaimed.
  virtual std::uint64_t collect_garbage();

  virtual std::size_t block_count() const { return blocks_.size(); }
  virtual std::uint64_t total_bytes() const { return total_bytes_; }

  // Durability barrier: returns once every previously accepted put is
  // crash-safe. The in-memory store has no crash safety to offer — a
  // no-op here; the async persistent store drains its write-behind
  // queue and fsyncs (persist/async_store.h).
  virtual void flush() {}

  // Power-loss hook for the fault layer (sim/faults.h): persistent
  // backends drop un-flushed state and replay their on-disk log. The
  // in-memory store models the paper's nodes whose pinned store
  // "survives on disk" across a crash, so the base hook keeps all state.
  virtual void handle_crash() {}

 private:
  // Both containers key by Cid directly (Cid is totally ordered), so pin
  // checks cost no re-encoding.
  std::map<Cid, BlockData> blocks_;
  std::set<Cid> pinned_;
  std::uint64_t total_bytes_ = 0;
};

// Replacement/admission policy knobs for LruBlockStore.
struct LruConfig {
  // Share of the byte capacity reserved for the protected segment (the
  // entries that have been hit at least once since insertion).
  double protected_share = 0.8;
  // TinyLFU admission: a 4-bit count-min sketch estimates access
  // frequency; at eviction time a candidate strictly colder than the
  // would-be victim is refused instead of evicting it.
  bool tinylfu = false;
  std::size_t sketch_entries = 4096;
};

// Byte-capped segmented-LRU store (the gateway's nginx-style web cache;
// paper Section 3.4). New blocks enter a probationary segment; a hit
// promotes to the protected segment, whose overflow demotes back to
// probation — so scan traffic evicts other scan traffic first. With
// `LruConfig::tinylfu` the sketch additionally gates admission.
class LruBlockStore {
 public:
  explicit LruBlockStore(std::uint64_t capacity_bytes, LruConfig config = {});

  // Inserts (or refreshes) a block, evicting probationary entries until
  // the new block fits. Blocks larger than the capacity are refused, as
  // are (under TinyLFU) blocks colder than every would-be victim.
  bool put(Block block);
  // Shared-ownership insert: edge and origin tiers alias one payload.
  bool put(const Cid& cid, BlockData data);

  // A hit refreshes recency and promotes probation -> protected. O(1):
  // returns the shared payload, never a copy; nullptr on miss.
  BlockData get(const Cid& cid);
  bool has(const Cid& cid) const;

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t protected_bytes() const { return protected_bytes_; }
  std::size_t block_count() const { return entries_.size(); }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t admission_rejections() const { return admission_rejections_; }
  // Null unless LruConfig::tinylfu was set.
  const FrequencySketch* sketch() const {
    return sketch_ ? &*sketch_ : nullptr;
  }

 private:
  struct Entry {
    BlockData data;
    std::list<Cid>::iterator recency;  // position in its segment's list
    bool protected_segment = false;
  };

  void touch(const Cid& cid, Entry& entry);
  // Frees space for `incoming_size`; returns false when TinyLFU refuses
  // the candidate (a victim is strictly hotter).
  bool make_room(std::uint64_t incoming_size, std::uint64_t candidate_hash);
  void evict_one();

  std::uint64_t capacity_;
  LruConfig config_;
  std::uint64_t protected_capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t protected_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t admission_rejections_ = 0;
  std::list<Cid> probation_;  // front = most recent
  std::list<Cid> protected_;  // front = most recent
  std::map<Cid, Entry> entries_;
  std::optional<FrequencySketch> sketch_;
};

}  // namespace ipfs::blockstore
