// Content-addressed block storage. Every IPFS node owns a BlockStore; the
// gateway additionally uses an LRU-capped store as its nginx-style cache.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "multiformats/cid.h"

namespace ipfs::blockstore {

using multiformats::Cid;

struct Block {
  Cid cid;
  std::vector<std::uint8_t> data;

  // Builds a block from raw bytes, deriving its CID (sha2-256, given codec).
  static Block from_data(multiformats::Multicodec codec,
                         std::span<const std::uint8_t> data);
};

enum class PutStatus { kStored, kAlreadyPresent, kCidMismatch };

// In-memory content-addressed store with pinning and GC, mirroring the
// go-ipfs node store semantics the paper relies on (Section 3.4).
class BlockStore {
 public:
  // Verifies the CID against the data before storing.
  PutStatus put(Block block);

  std::optional<Block> get(const Cid& cid) const;
  bool has(const Cid& cid) const;
  bool remove(const Cid& cid);  // refuses to remove pinned blocks

  void pin(const Cid& cid);
  void unpin(const Cid& cid);
  bool pinned(const Cid& cid) const;

  // Drops every unpinned block; returns bytes reclaimed.
  std::uint64_t collect_garbage();

  std::size_t block_count() const { return blocks_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  // Both containers key by Cid directly (Cid is totally ordered), so pin
  // checks cost no re-encoding.
  std::map<Cid, std::vector<std::uint8_t>> blocks_;
  std::set<Cid> pinned_;
  std::uint64_t total_bytes_ = 0;
};

// Byte-capped LRU store (the gateway's nginx web cache, Least Recently
// Used replacement; paper Section 3.4).
class LruBlockStore {
 public:
  explicit LruBlockStore(std::uint64_t capacity_bytes);

  // Inserts (or refreshes) a block, evicting least-recently-used entries
  // until the new block fits. Blocks larger than the capacity are refused.
  bool put(Block block);

  // A hit refreshes recency.
  std::optional<Block> get(const Cid& cid);
  bool has(const Cid& cid) const;

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::size_t block_count() const { return entries_.size(); }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    Block block;
    std::list<Cid>::iterator recency;  // position in recency list
  };

  void evict_one();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Cid> recency_;  // front = most recent
  std::map<Cid, Entry> entries_;
};

}  // namespace ipfs::blockstore
