// TinyLFU admission filtering (Einziger et al., "TinyLFU: A Highly
// Efficient Cache Admission Policy").
//
// A FrequencySketch is a 4-bit count-min sketch: four rows of saturating
// nibble counters approximate how often each key was accessed in the
// recent past. Every `sample_period` recorded accesses all counters are
// halved ("aging"), so the estimate tracks a sliding window rather than
// all of history. A byte-capped cache consults the sketch at eviction
// time: a new block is admitted only if it is at least as popular as the
// block it would evict, which stops the Zipf tail's one-hit wonders from
// flushing hot objects out of the gateway edge caches.
#pragma once

#include <cstdint>
#include <vector>

#include "multiformats/cid.h"

namespace ipfs::blockstore {

// Deterministic 64-bit key hash for cache structures (frequency sketch
// rows, the gateway fleet's consistent-hash ring). Hashes the multihash
// digest directly — no intermediate encoding allocation on hot paths.
std::uint64_t cid_hash64(const multiformats::Cid& cid);

class FrequencySketch {
 public:
  // Sized for roughly `entries` distinct hot keys; the row width is the
  // next power of two (counters are 4-bit, so memory is width/2 bytes
  // per row). `entries` == 0 is rounded up to a minimal sketch.
  explicit FrequencySketch(std::size_t entries);

  // Counts one access. After sample_period() recordings every counter is
  // halved and the sample count reset to half, deterministically.
  void record(std::uint64_t key_hash);

  // Approximate access count in the current window: the minimum over the
  // four row counters (each an overestimate), saturating at 15.
  std::uint32_t estimate(std::uint64_t key_hash) const;

  std::size_t width() const { return width_; }
  std::uint64_t sample_count() const { return sample_; }
  std::uint64_t sample_period() const { return sample_period_; }
  std::uint64_t halvings() const { return halvings_; }

 private:
  static constexpr std::size_t kRows = 4;

  std::size_t index(std::uint64_t key_hash, std::size_t row) const;
  std::uint32_t counter(std::size_t row, std::size_t slot) const;
  void set_counter(std::size_t row, std::size_t slot, std::uint32_t value);
  void halve();

  std::size_t width_ = 0;       // slots per row, power of two
  std::uint64_t mask_ = 0;      // width_ - 1
  std::vector<std::uint8_t> table_;  // kRows * width_ nibbles, packed
  std::uint64_t sample_ = 0;
  std::uint64_t sample_period_ = 0;
  std::uint64_t halvings_ = 0;
};

}  // namespace ipfs::blockstore
