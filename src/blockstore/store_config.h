// Backend selection knob for a node's BlockStore (docs/BLOCKSTORE.md).
// IpfsNodeConfig embeds one of these; scenarios and ipfsd flip the
// backend without the node, Bitswap or merkledag code changing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "blockstore/blockstore.h"

namespace ipfs::metrics {
class Registry;
}

namespace ipfs::blockstore {

struct StoreConfig {
  enum class Backend {
    kMemory,           // in-process std::map store (the seed behavior)
    kPersistentSync,   // log-structured store, fsync on every flush()
    kPersistentAsync,  // + write-behind queue with batched group fsync
  };

  Backend backend = Backend::kMemory;

  // Persistent backends only. Empty directory => MemStorage (simulated
  // files with power-loss semantics); non-empty => PosixStorage rooted
  // there (what ipfsd --store-dir passes).
  std::string directory;
  std::uint64_t segment_bytes = 8 * 1024 * 1024;
  // Seed for simulated power-loss cut points (MemStorage only).
  std::uint64_t crash_seed = 0;

  // Async backend only (persist/async_store.h).
  std::size_t flush_batch_blocks = 64;
  std::uint64_t queue_limit_bytes = 64 * 1024 * 1024;
  // Periodic flush cadence for the node's daemon timer; <= 0 disables.
  // Microseconds, kept sim-free so this header has no sim dependency.
  std::int64_t flush_interval_us = 0;
};

// Builds the configured store. `metrics` may be null (no counters).
std::unique_ptr<BlockStore> make_store(const StoreConfig& config,
                                       metrics::Registry* metrics);

}  // namespace ipfs::blockstore
