#include "blockstore/tinylfu.h"

namespace ipfs::blockstore {

namespace {

// splitmix64 finalizer: cheap, well-mixed, deterministic across runs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t cid_hash64(const multiformats::Cid& cid) {
  // FNV-1a over the digest bytes, then the version/codec words so CIDv0
  // and its CIDv1 re-encoding of the same digest stay distinct keys.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : cid.hash().digest()) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  h ^= static_cast<std::uint64_t>(cid.version());
  h *= 0x100000001b3ULL;
  h ^= static_cast<std::uint64_t>(cid.content_codec());
  h *= 0x100000001b3ULL;
  return mix64(h);
}

FrequencySketch::FrequencySketch(std::size_t entries) {
  std::size_t width = 64;
  while (width < entries) width <<= 1;
  width_ = width;
  mask_ = width_ - 1;
  table_.assign(kRows * width_ / 2, 0);  // two nibbles per byte
  // The classic TinyLFU window: ~10 samples per counter slot before the
  // halving pass ages the whole sketch.
  sample_period_ = 10ULL * width_;
}

std::size_t FrequencySketch::index(std::uint64_t key_hash,
                                   std::size_t row) const {
  // Independent row hashes from one 64-bit key: re-mix with a row seed.
  return static_cast<std::size_t>(
             mix64(key_hash ^ (0xa0761d6478bd642fULL * (row + 1)))) &
         mask_;
}

std::uint32_t FrequencySketch::counter(std::size_t row,
                                       std::size_t slot) const {
  const std::size_t nibble = row * width_ + slot;
  const std::uint8_t byte = table_[nibble / 2];
  return (nibble & 1) ? (byte >> 4) : (byte & 0x0f);
}

void FrequencySketch::set_counter(std::size_t row, std::size_t slot,
                                  std::uint32_t value) {
  const std::size_t nibble = row * width_ + slot;
  std::uint8_t& byte = table_[nibble / 2];
  if (nibble & 1)
    byte = static_cast<std::uint8_t>((byte & 0x0f) | (value << 4));
  else
    byte = static_cast<std::uint8_t>((byte & 0xf0) | (value & 0x0f));
}

void FrequencySketch::record(std::uint64_t key_hash) {
  for (std::size_t row = 0; row < kRows; ++row) {
    const std::size_t slot = index(key_hash, row);
    const std::uint32_t current = counter(row, slot);
    if (current < 15) set_counter(row, slot, current + 1);
  }
  if (++sample_ >= sample_period_) halve();
}

std::uint32_t FrequencySketch::estimate(std::uint64_t key_hash) const {
  std::uint32_t lowest = 15;
  for (std::size_t row = 0; row < kRows; ++row) {
    const std::uint32_t value = counter(row, index(key_hash, row));
    if (value < lowest) lowest = value;
  }
  return lowest;
}

void FrequencySketch::halve() {
  // Shift every nibble right by one in place; the 0x77 mask clears the
  // bit that would leak across each nibble boundary.
  for (std::uint8_t& byte : table_)
    byte = static_cast<std::uint8_t>((byte >> 1) & 0x77);
  sample_ >>= 1;
  ++halvings_;
}

}  // namespace ipfs::blockstore
