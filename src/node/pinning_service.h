// Pinning service (paper Section 3.1): "peers behind NATs cannot host
// content themselves. Thus, third party hosts, commonly called pinning
// services, are used to publish content on behalf of NAT'ed end-users."
//
// A pinning service wraps an always-on, publicly reachable IPFS node and
// exposes a pin API: clients hand it content (or a CID to fetch), and the
// service imports, pins, announces and keeps republishing it.
#pragma once

#include <functional>

#include "node/ipfs_node.h"

namespace ipfs::node {

class PinningService {
 public:
  explicit PinningService(IpfsNode& node) : node_(node) {}

  struct PinResult {
    bool ok = false;
    Cid cid;
    sim::Duration publish_time = 0;
    int provider_records = 0;
  };

  // Pins raw content uploaded by a client: import + pin + announce +
  // schedule 12 h republishing.
  void pin_bytes(std::span<const std::uint8_t> data,
                 std::function<void(PinResult)> done);

  // Pins existing network content by CID: retrieve it, then pin and
  // announce from this service (the "pin by CID" API of real services).
  void pin_cid(const Cid& cid, std::function<void(PinResult)> done);

  void unpin(const Cid& cid);

  std::size_t pinned_count() const { return pinned_; }
  IpfsNode& node() { return node_; }

 private:
  void announce(const Cid& cid, std::function<void(PinResult)> done);

  IpfsNode& node_;
  std::size_t pinned_ = 0;
};

}  // namespace ipfs::node
