#include "node/ipfs_node.h"

namespace ipfs::node {
namespace {

multiformats::PeerId peer_id_for(const crypto::Ed25519KeyPair& keypair) {
  return multiformats::PeerId::from_public_key(keypair.public_key);
}

}  // namespace

double RetrievalTrace::stretch() const {
  const double https = sim::to_seconds(dial + negotiate + fetch);
  if (https <= 0.0) return 1.0;
  return sim::to_seconds(discover() + dial + negotiate + fetch) / https;
}

double RetrievalTrace::stretch_without_bitswap() const {
  const double https = sim::to_seconds(dial + negotiate + fetch);
  if (https <= 0.0) return 1.0;
  return sim::to_seconds(provider_walk + peer_walk + dial + negotiate + fetch) /
         https;
}

crypto::Ed25519KeyPair IpfsNode::derive_keypair(std::uint64_t seed) {
  crypto::Ed25519Seed bytes{};
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  bytes[8] = 0x1f;  // domain separation from other seed uses
  return crypto::ed25519_keypair(bytes);
}

IpfsNode::IpfsNode(sim::Network& network, const IpfsNodeConfig& config)
    : network_(network),
      node_(network.add_node(config.net)),
      config_(config),
      keypair_(derive_keypair(config.identity_seed)),
      dht_(network, node_, peer_id_for(keypair_),
           {multiformats::make_tcp_multiaddr("10.0.0.1", 4001)}),
      bitswap_(network, node_, store_),
      conn_manager_(network, node_, config.conn_manager) {
  // Protocol multiplexer: route requests to the DHT, then Bitswap.
  network_.set_request_handler(
      node_, [this](sim::NodeId from, const sim::MessagePtr& message,
                    auto respond) {
        if (dht_.handle_request(from, message, respond)) return;
        bitswap_.handle_request(from, message, respond);
      });
  network_.set_message_handler(
      node_, [this](sim::NodeId from, const sim::MessagePtr& message) {
        dht_.handle_message(from, message);
      });
}

void IpfsNode::bootstrap(std::vector<dht::PeerRef> seeds,
                         std::function<void(bool)> done) {
  for (const auto& seed : seeds) {
    address_book_.insert(seed);
    conn_manager_.protect(seed.node);
  }
  dht_.bootstrap(std::move(seeds), std::move(done));
}

merkledag::ImportResult IpfsNode::add(std::span<const std::uint8_t> data) {
  auto result = merkledag::import_bytes(store_, data);
  store_.pin(result.root);
  return result;
}

void IpfsNode::provide(const Cid& cid, std::function<void(PublishTrace)> done,
                       std::size_t max_records) {
  const dht::Key key = dht::Key::for_cid(cid);
  const sim::Time start = network_.simulator().now();

  dht_.lookup_closest(key, [this, cid, key, start, max_records,
                            done = std::move(done)](dht::LookupResult walk) {
    const sim::Time walk_end = network_.simulator().now();
    // The walk held dozens of connections open; the connection manager
    // has trimmed down by the time the store batch begins, so most of
    // the 20 targets need a fresh dial (Section 6.1's timeout spikes).
    conn_manager_.trim();

    auto targets = walk.closest;
    if (targets.size() > max_records) targets.resize(max_records);
    dht_.store_provider_records(
        key, targets,
        [this, cid, start, walk_end,
         done = std::move(done)](dht::DhtNode::StoreBatchResult batch) {
          PublishTrace trace;
          trace.cid = cid;
          trace.walk = walk_end - start;
          trace.rpc_batch = batch.elapsed;
          trace.total = trace.walk + trace.rpc_batch;
          trace.provider_records_sent = batch.sent;
          trace.ok = batch.sent > 0;
          if (trace.ok) dht_.start_reproviding(dht::Key::for_cid(cid));
          done(trace);
        });
  });
}

void IpfsNode::publish(std::span<const std::uint8_t> data,
                       std::function<void(PublishTrace)> done) {
  const auto import = add(data);
  provide(import.root, std::move(done));
}

void IpfsNode::retrieve(const Cid& cid,
                        std::function<void(RetrievalTrace)> done) {
  auto trace = std::make_shared<RetrievalTrace>();
  trace->cid = cid;
  retrieval_started_ = network_.simulator().now();

  // Phase 0: the object may be complete locally.
  if (merkledag::cat(store_, cid).has_value()) {
    trace->ok = true;
    trace->local_hit = true;
    done(*trace);
    return;
  }

  if (config_.parallel_dht_lookup) {
    retrieve_parallel(trace, std::move(done));
    return;
  }

  // Phase 1: opportunistic Bitswap to already connected peers (step 4).
  const sim::Time bitswap_start = network_.simulator().now();
  bitswap_.discover(
      cid, config_.bitswap_timeout,
      [this, cid, trace, bitswap_start,
       done = std::move(done)](std::optional<sim::NodeId> holder) {
        trace->bitswap_discovery =
            network_.simulator().now() - bitswap_start;
        if (holder) {
          trace->bitswap_hit = true;
          fetch_from(trace, *holder, std::move(done));
          return;
        }

        // Phase 2: content discovery via DHT walk #1 (step 5).
        const sim::Time walk_start = network_.simulator().now();
        dht_.find_providers(
            dht::Key::for_cid(cid),
            [this, trace, walk_start,
             done = std::move(done)](dht::LookupResult result) {
              trace->provider_walk =
                  network_.simulator().now() - walk_start;
              if (result.providers.empty()) {
                trace->total =
                    network_.simulator().now() - retrieval_started_;
                done(*trace);
                return;
              }
              finish_retrieval(trace, result.providers.front().provider,
                               network_.simulator().now(), std::move(done));
            });
      },
      config_.bitswap_early_exit);
}

void IpfsNode::retrieve_parallel(std::shared_ptr<RetrievalTrace> trace,
                                 std::function<void(RetrievalTrace)> done) {
  // Section 6.4's proposed optimization: race the Bitswap probe against
  // the DHT walk; whichever yields a source first drives the fetch. The
  // loser's result is discarded (extra network requests traded for
  // latency).
  struct Race {
    bool fetching = false;        // a source won; ignore the other path
    bool bitswap_done = false;
    bool walk_done = false;
  };
  auto race = std::make_shared<Race>();
  auto done_shared =
      std::make_shared<std::function<void(RetrievalTrace)>>(std::move(done));
  const sim::Time start = network_.simulator().now();

  auto fail_if_both_missed = [this, race, trace, done_shared] {
    if (race->fetching || !race->bitswap_done || !race->walk_done) return;
    trace->total = network_.simulator().now() - retrieval_started_;
    (*done_shared)(*trace);
  };

  bitswap_.discover(
      trace->cid, config_.bitswap_timeout,
      [this, race, trace, start, done_shared,
       fail_if_both_missed](std::optional<sim::NodeId> holder) {
        race->bitswap_done = true;
        if (race->fetching) return;
        if (holder) {
          race->fetching = true;
          trace->bitswap_hit = true;
          trace->bitswap_discovery = network_.simulator().now() - start;
          fetch_from(trace, *holder, *done_shared);
          return;
        }
        fail_if_both_missed();
      },
      config_.bitswap_early_exit);

  dht_.find_providers(
      dht::Key::for_cid(trace->cid),
      [this, race, trace, start, done_shared,
       fail_if_both_missed](dht::LookupResult result) {
        race->walk_done = true;
        if (race->fetching) return;
        if (!result.providers.empty()) {
          race->fetching = true;
          trace->provider_walk = network_.simulator().now() - start;
          finish_retrieval(trace, result.providers.front().provider,
                           network_.simulator().now(), *done_shared);
          return;
        }
        fail_if_both_missed();
      });
}

void IpfsNode::finish_retrieval(std::shared_ptr<RetrievalTrace> trace,
                                const dht::PeerRef& provider,
                                sim::Time phase_start,
                                std::function<void(RetrievalTrace)> done) {
  // Phase 3: peer discovery. Use the provider's address if the record
  // carried one or the address book knows it; otherwise DHT walk #2.
  dht::PeerRef resolved = provider;
  if (resolved.node == sim::kInvalidNode) {
    if (const auto known = address_book_.find(provider.id)) {
      resolved = *known;
    }
  }

  if (resolved.node != sim::kInvalidNode) {
    address_book_.insert(resolved);
    fetch_from(trace, resolved.node, std::move(done));
    return;
  }

  trace->used_peer_walk = true;
  dht_.find_peer(provider.id,
                 [this, trace, phase_start, done = std::move(done)](
                     std::optional<dht::PeerRef> peer,
                     dht::LookupResult) {
                   trace->peer_walk =
                       network_.simulator().now() - phase_start;
                   if (!peer) {
                     trace->total =
                         network_.simulator().now() - retrieval_started_;
                     done(*trace);
                     return;
                   }
                   address_book_.insert(*peer);
                   fetch_from(trace, peer->node, std::move(done));
                 });
}

void IpfsNode::fetch_from(std::shared_ptr<RetrievalTrace> trace,
                          sim::NodeId peer,
                          std::function<void(RetrievalTrace)> done) {
  // Phase 4: peer routing (dial + negotiate), then content exchange.
  const sim::Time dial_start = network_.simulator().now();
  network_.connect(
      node_, peer,
      [this, trace, peer, dial_start,
       done = std::move(done)](bool ok, sim::Duration elapsed) {
        if (!ok) {
          trace->total = network_.simulator().now() - retrieval_started_;
          done(*trace);
          return;
        }
        // Split the handshake into its transport (Dial) and security/mux
        // (Negotiate) parts by round-trip share — Equation 2 needs both.
        const int round_trips =
            sim::handshake_round_trips(network_.config(peer).transport);
        trace->dial = elapsed / round_trips;
        trace->negotiate = elapsed - trace->dial;
        conn_manager_.protect(peer);
        (void)dial_start;

        const sim::Time fetch_start = network_.simulator().now();
        bitswap_.fetch_dag(
            peer, trace->cid,
            [this, trace, peer, fetch_start,
             done = std::move(done)](bitswap::FetchStats stats) {
              conn_manager_.unprotect(peer);
              trace->provider_node = peer;
              trace->fetch = network_.simulator().now() - fetch_start;
              trace->bytes = stats.bytes;
              trace->ok = stats.ok;
              trace->total =
                  network_.simulator().now() - retrieval_started_;
              if (trace->ok && config_.provide_after_fetch) {
                // Become a temporary provider (Section 3.1), without
                // affecting the measured retrieval.
                store_.pin(trace->cid);
                dht_.provide(dht::Key::for_cid(trace->cid),
                             [](dht::DhtNode::ProvideResult) {});
              }
              done(*trace);
            });
      });
}

void IpfsNode::handle_crash() {
  dht_.handle_crash();
  bitswap_.handle_crash();
  address_book_ = AddressBook(address_book_.capacity());
  conn_manager_.clear_protected();
}

void IpfsNode::handle_restart(std::vector<dht::PeerRef> seeds,
                              std::function<void(bool)> done) {
  dht_.handle_restart();
  bootstrap(std::move(seeds), std::move(done));
}

void IpfsNode::reset_for_next_measurement() {
  conn_manager_.disconnect_all();
  // Forget cached addresses so peer discovery exercises the DHT again
  // (the paper's controlled nodes disconnect between iterations for the
  // same reason, Section 4.3).
  address_book_ = AddressBook(address_book_.capacity());
}

void IpfsNode::disconnect_from(sim::NodeId peer) {
  network_.disconnect(node_, peer);
}

void IpfsNode::forget_peer_addresses() {
  address_book_ = AddressBook(address_book_.capacity());
}

}  // namespace ipfs::node
