#include "node/ipfs_node.h"

#include "transport/sim_transport.h"

namespace ipfs::node {
namespace {

multiformats::PeerId peer_id_for(const crypto::Ed25519KeyPair& keypair) {
  return multiformats::PeerId::from_public_key(keypair.public_key);
}

// Per-node listen address, spread across 10.x/16 prefixes so the routing
// table's IP-diversity cap (docs/ADVERSARY.md) sees honest peers as
// distinct networks. Message sizes are count-based, so the address bytes
// never influence timing.
multiformats::Multiaddr listen_address_for(std::uint64_t seed) {
  return multiformats::make_tcp_multiaddr(
      "10." + std::to_string(seed % 250) + "." +
          std::to_string((seed / 250) % 250) + ".1",
      4001);
}

}  // namespace

double RetrievalTrace::stretch() const {
  const double https = sim::to_seconds(dial + negotiate + fetch);
  if (https <= 0.0) return 1.0;
  return sim::to_seconds(discover() + dial + negotiate + fetch) / https;
}

double RetrievalTrace::stretch_without_bitswap() const {
  const double https = sim::to_seconds(dial + negotiate + fetch);
  if (https <= 0.0) return 1.0;
  return sim::to_seconds(provider_walk + peer_walk + dial + negotiate + fetch) /
         https;
}

crypto::Ed25519KeyPair IpfsNode::derive_keypair(std::uint64_t seed) {
  crypto::Ed25519Seed bytes{};
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  bytes[8] = 0x1f;  // domain separation from other seed uses
  return crypto::ed25519_keypair(bytes);
}

IpfsNode::IpfsNode(transport::Transport& transport,
                   const IpfsNodeConfig& config)
    : transport_(transport),
      node_(transport.local()),
      config_(config),
      keypair_(derive_keypair(config.identity_seed)),
      store_(blockstore::make_store(config.store, &transport.metrics())),
      dht_(transport, peer_id_for(keypair_),
           {listen_address_for(config.identity_seed)}),
      router_(routing::make_router(transport, dht_, config.routing)),
      bitswap_(transport, *store_),
      conn_manager_(transport, config.conn_manager) {
  dht_.set_provider_quorum(config.provider_quorum);
  if (config.bucket_diversity_cap > 0)
    dht_.set_bucket_diversity_cap(config.bucket_diversity_cap);
  // Protocol multiplexer: route requests to the DHT, then Bitswap.
  transport_.set_request_handler(
      [this](sim::NodeId from, const sim::MessagePtr& message, auto respond) {
        if (dht_.handle_request(from, message, respond)) return;
        bitswap_.handle_request(from, message, respond);
      });
  transport_.set_message_handler(
      [this](sim::NodeId from, const sim::MessagePtr& message) {
        if (dht_.handle_message(from, message)) return;
        if (pubsub_) pubsub_->handle_message(from, message);
      });
  if (config.enable_pubsub) {
    pubsub::PubsubConfig pubsub_config = config.pubsub;
    if (pubsub_config.seed == 0) pubsub_config.seed = config.identity_seed;
    pubsub_ = std::make_unique<pubsub::Pubsub>(transport_, pubsub_config);
    name_resolver_ = std::make_unique<ipns::PubsubResolver>(dht_, *pubsub_);
  }
  if (!config_.routing.indexers.empty()) {
    // The 12 h republish re-advertises to indexers too, so indexer state
    // (wiped by an indexer crash) survives on the same cadence as DHT
    // provider records.
    dht_.set_republish_hook([this](const dht::Key& key) {
      routing::advertise_to_indexers(transport_, config_.routing, key,
                                     dht_.self());
    });
  }
  if (config_.store.flush_interval_us > 0) arm_flush_timer();
}

void IpfsNode::arm_flush_timer() {
  flush_timer_ = transport_.schedule_daemon_after(
      sim::microseconds(config_.store.flush_interval_us), [this] {
        store_->flush();
        arm_flush_timer();
      });
}

IpfsNode::IpfsNode(std::unique_ptr<transport::Transport> transport,
                   const IpfsNodeConfig& config)
    : IpfsNode(*transport, config) {
  owned_transport_ = std::move(transport);
}

IpfsNode::IpfsNode(sim::Network& network, const IpfsNodeConfig& config)
    : IpfsNode(std::make_unique<transport::SimTransport>(network, config.net),
               config) {}

IpfsNode::~IpfsNode() = default;

void IpfsNode::bootstrap(std::vector<dht::PeerRef> seeds,
                         std::function<void(bool)> done) {
  for (const auto& seed : seeds) {
    address_book_.insert(seed);
    conn_manager_.protect(seed.node);
    // Bootstrap peers double as ambient pubsub candidates; px and
    // subscription announcements take over from there.
    if (pubsub_) pubsub_->add_candidate_peer(seed.node);
  }
  dht_.bootstrap(std::move(seeds), std::move(done));
}

merkledag::ImportResult IpfsNode::add(std::span<const std::uint8_t> data) {
  auto result = merkledag::import_bytes(*store_, data);
  store_->pin(result.root);
  // Publication durability: an add() is the node acking the content, so
  // the write-behind queue drains and fsyncs before we hand out the CID.
  store_->flush();
  return result;
}

void IpfsNode::provide(const Cid& cid, std::function<void(PublishTrace)> done,
                       std::size_t max_records) {
  const dht::Key key = dht::Key::for_cid(cid);
  metrics::Registry& metrics = transport_.metrics();

  // Advertisement push to the configured indexers runs alongside the DHT
  // publication (the IPNI announce path is independent of the DHT walk).
  // Records become queryable after the indexers' ingest lag.
  routing::advertise_to_indexers(transport_, config_.routing, key,
                                 dht_.self());

  // The trace's timing fields are derived from these spans: each phase
  // duration is whatever end_span reports, not a hand-maintained clock.
  const metrics::SpanId total_span =
      metrics.begin_span("publish.total", node_, cid.to_string());
  const metrics::SpanId walk_span = metrics.begin_span(
      "publish.walk", node_, cid.to_string(), total_span);

  dht_.lookup_closest(
      key,
      [this, cid, key, max_records, total_span, walk_span,
       done = std::move(done)](dht::LookupResult walk) {
        const sim::Duration walk_elapsed =
            transport_.metrics().end_span(walk_span, !walk.closest.empty());
        // The walk held dozens of connections open; the connection manager
        // has trimmed down by the time the store batch begins, so most of
        // the 20 targets need a fresh dial (Section 6.1's timeout spikes).
        conn_manager_.trim();

        auto targets = walk.closest;
        if (targets.size() > max_records) targets.resize(max_records);
        const metrics::SpanId batch_span = transport_.metrics().begin_span(
            "publish.rpc_batch", node_, cid.to_string(), total_span);
        dht_.store_provider_records(
            key, targets,
            [this, cid, walk_elapsed, total_span, batch_span,
             done = std::move(done)](dht::DhtNode::StoreBatchResult batch) {
              PublishTrace trace;
              trace.cid = cid;
              trace.walk = walk_elapsed;
              trace.ok = batch.sent > 0;
              trace.rpc_batch =
                  transport_.metrics().end_span(batch_span, trace.ok);
              trace.provider_records_sent = batch.sent;
              trace.total = transport_.metrics().end_span(
                  total_span, trace.ok,
                  static_cast<std::uint64_t>(batch.sent));
              if (trace.ok) dht_.start_reproviding(dht::Key::for_cid(cid));
              done(trace);
            });
      },
      walk_span);
}

void IpfsNode::publish(std::span<const std::uint8_t> data,
                       std::function<void(PublishTrace)> done) {
  const auto import = add(data);
  provide(import.root, std::move(done));
}

// Closes the retrieval's root span and delivers the trace. trace.total is
// the span's duration — the one clock shared with the trace stream.
void IpfsNode::finish(const std::shared_ptr<RetrievalCtx>& ctx,
                      const std::function<void(RetrievalTrace)>& done) {
  ctx->trace.total = transport_.metrics().end_span(ctx->span, ctx->trace.ok,
                                                 ctx->trace.bytes);
  done(ctx->trace);
}

void IpfsNode::retrieve(const Cid& cid,
                        std::function<void(RetrievalTrace)> done) {
  auto ctx = std::make_shared<RetrievalCtx>();
  ctx->trace.cid = cid;
  ctx->span = transport_.metrics().begin_span("retrieve.total", node_,
                                            cid.to_string());

  // Phase 0: the object may be complete locally.
  if (merkledag::cat(*store_, cid).has_value()) {
    ctx->trace.ok = true;
    ctx->trace.local_hit = true;
    finish(ctx, done);
    return;
  }

  if (config_.parallel_dht_lookup) {
    retrieve_parallel(std::move(ctx), std::move(done));
    return;
  }

  // Phase 1: opportunistic Bitswap to already connected peers (step 4).
  const metrics::SpanId discovery_span = transport_.metrics().begin_span(
      "retrieve.bitswap_discovery", node_, cid.to_string(), ctx->span);
  bitswap_.discover(
      cid, config_.bitswap_timeout,
      [this, cid, ctx, discovery_span,
       done = std::move(done)](std::optional<sim::NodeId> holder) {
        ctx->trace.bitswap_discovery =
            transport_.metrics().end_span(discovery_span, holder.has_value());
        if (holder) {
          ctx->trace.bitswap_hit = true;
          fetch_from(ctx, *holder, std::move(done));
          return;
        }

        // Phase 2: content discovery through the configured ContentRouter
        // (step 5: the DHT walk, a delegated indexer query, or a race).
        const metrics::SpanId walk_span = transport_.metrics().begin_span(
            "retrieve.provider_walk", node_, cid.to_string(), ctx->span);
        router_->find_providers(
            dht::Key::for_cid(cid),
            [this, ctx, walk_span,
             done = std::move(done)](routing::FindResult result) {
              ctx->trace.provider_walk =
                  transport_.metrics().end_span(walk_span, result.ok);
              record_routing_outcome(ctx, result.source,
                                     ctx->trace.provider_walk);
              if (!result.ok) {
                finish(ctx, done);
                return;
              }
              for (const auto& record : result.providers)
                ctx->providers.push_back(record.provider);
              ctx->next_provider = 1;
              finish_retrieval(ctx, ctx->providers.front(),
                               std::move(done));
            },
            walk_span);
      },
      config_.bitswap_early_exit);
}

void IpfsNode::retrieve_parallel(std::shared_ptr<RetrievalCtx> ctx,
                                 std::function<void(RetrievalTrace)> done) {
  // Section 6.4's proposed optimization: race the Bitswap probe against
  // the DHT walk; whichever yields a source first drives the fetch. The
  // loser's result is discarded (extra network requests traded for
  // latency).
  struct Race {
    bool fetching = false;        // a source won; ignore the other path
    bool bitswap_done = false;
    bool walk_done = false;
  };
  auto race = std::make_shared<Race>();
  auto done_shared =
      std::make_shared<std::function<void(RetrievalTrace)>>(std::move(done));

  auto fail_if_both_missed = [this, race, ctx, done_shared] {
    if (race->fetching || !race->bitswap_done || !race->walk_done) return;
    finish(ctx, *done_shared);
  };

  // Both phase spans open together; each closes when its path resolves,
  // whether or not it won the race (losing telemetry is still telemetry).
  const metrics::SpanId discovery_span = transport_.metrics().begin_span(
      "retrieve.bitswap_discovery", node_, ctx->trace.cid.to_string(),
      ctx->span);
  const metrics::SpanId walk_span = transport_.metrics().begin_span(
      "retrieve.provider_walk", node_, ctx->trace.cid.to_string(), ctx->span);

  bitswap_.discover(
      ctx->trace.cid, config_.bitswap_timeout,
      [this, race, ctx, discovery_span, done_shared,
       fail_if_both_missed](std::optional<sim::NodeId> holder) {
        race->bitswap_done = true;
        const sim::Duration elapsed = transport_.metrics().end_span(
            discovery_span, holder.has_value() && !race->fetching);
        if (race->fetching) return;
        if (holder) {
          race->fetching = true;
          ctx->trace.bitswap_hit = true;
          ctx->trace.bitswap_discovery = elapsed;
          fetch_from(ctx, *holder, *done_shared);
          return;
        }
        fail_if_both_missed();
      },
      config_.bitswap_early_exit);

  router_->find_providers(
      dht::Key::for_cid(ctx->trace.cid),
      [this, race, ctx, walk_span, done_shared,
       fail_if_both_missed](routing::FindResult result) {
        race->walk_done = true;
        const sim::Duration elapsed = transport_.metrics().end_span(
            walk_span, result.ok && !race->fetching);
        if (race->fetching) return;  // Bitswap won; the source stays kNone
        record_routing_outcome(ctx, result.source, elapsed);
        if (result.ok) {
          race->fetching = true;
          ctx->trace.provider_walk = elapsed;
          for (const auto& record : result.providers)
            ctx->providers.push_back(record.provider);
          ctx->next_provider = 1;
          finish_retrieval(ctx, ctx->providers.front(), *done_shared);
          return;
        }
        fail_if_both_missed();
      },
      walk_span);
}

void IpfsNode::record_routing_outcome(const std::shared_ptr<RetrievalCtx>& ctx,
                                      routing::Source source,
                                      sim::Duration elapsed) {
  ctx->trace.routing_source = source;
  metrics::Registry& metrics = transport_.metrics();
  const std::string name = routing::source_name(source);
  metrics.counter("routing.source." + name).inc();
  metrics.histogram("routing.latency." + name).record(elapsed);
  metrics.instant("retrieve.routing_source", node_, ctx->trace.cid.to_string(),
                  static_cast<std::uint64_t>(source), metrics::kNoNode,
                  ctx->span);
}

void IpfsNode::fail_or_fallback(std::shared_ptr<RetrievalCtx> ctx,
                                std::function<void(RetrievalTrace)> done) {
  // A poisoned or dead provider record is survivable when the walk
  // gathered more than one (provider quorum): dial the next record in
  // discovery order instead of failing the whole retrieval.
  if (ctx->next_provider < ctx->providers.size()) {
    const dht::PeerRef next = ctx->providers[ctx->next_provider++];
    ++ctx->trace.provider_fallbacks;
    transport_.metrics().counter("retrieve.provider_fallbacks").inc();
    finish_retrieval(std::move(ctx), next, std::move(done));
    return;
  }
  finish(ctx, done);
}

void IpfsNode::finish_retrieval(std::shared_ptr<RetrievalCtx> ctx,
                                const dht::PeerRef& provider,
                                std::function<void(RetrievalTrace)> done) {
  // Phase 3: peer discovery. Use the provider's address if the record
  // carried one or the address book knows it; otherwise DHT walk #2.
  dht::PeerRef resolved = provider;
  if (resolved.node == sim::kInvalidNode) {
    if (const auto known = address_book_.find(provider.id)) {
      resolved = *known;
    }
  }

  if (resolved.node != sim::kInvalidNode) {
    address_book_.insert(resolved);
    fetch_from(std::move(ctx), resolved.node, std::move(done));
    return;
  }

  ctx->trace.used_peer_walk = true;
  const metrics::SpanId peer_walk_span = transport_.metrics().begin_span(
      "retrieve.peer_walk", node_, ctx->trace.cid.to_string(), ctx->span);
  dht_.find_peer(
      provider.id,
      [this, ctx, peer_walk_span, done = std::move(done)](
          std::optional<dht::PeerRef> peer, dht::LookupResult) {
        ctx->trace.peer_walk =
            transport_.metrics().end_span(peer_walk_span, peer.has_value());
        if (!peer) {
          fail_or_fallback(ctx, done);
          return;
        }
        address_book_.insert(*peer);
        fetch_from(ctx, peer->node, std::move(done));
      },
      peer_walk_span);
}

void IpfsNode::fetch_from(std::shared_ptr<RetrievalCtx> ctx, sim::NodeId peer,
                          std::function<void(RetrievalTrace)> done) {
  // Phase 4: peer routing (dial + negotiate), then content exchange.
  const metrics::SpanId dial_span = transport_.metrics().begin_span(
      "retrieve.dial", node_, ctx->trace.cid.to_string(), ctx->span, peer);
  transport_.connect(
      peer,
      [this, ctx, peer, dial_span,
       done = std::move(done)](bool ok, sim::Duration elapsed) {
        const sim::Duration handshake =
            transport_.metrics().end_span(dial_span, ok);
        (void)elapsed;  // == handshake: the span brackets the dial exactly
        if (!ok) {
          fail_or_fallback(ctx, done);
          return;
        }
        // Split the handshake into its transport (Dial) and security/mux
        // (Negotiate) parts by round-trip share — Equation 2 needs both.
        const int round_trips = transport_.handshake_round_trips(peer);
        ctx->trace.dial = handshake / round_trips;
        ctx->trace.negotiate = handshake - ctx->trace.dial;
        conn_manager_.protect(peer);

        const metrics::SpanId fetch_span = transport_.metrics().begin_span(
            "retrieve.fetch", node_, ctx->trace.cid.to_string(), ctx->span,
            peer);
        bitswap_.fetch_dag(
            peer, ctx->trace.cid,
            [this, ctx, peer, fetch_span,
             done = std::move(done)](bitswap::FetchStats stats) {
              conn_manager_.unprotect(peer);
              ctx->trace.provider_node = peer;
              ctx->trace.bytes = stats.bytes;
              ctx->trace.ok = stats.ok;
              ctx->trace.fetch = transport_.metrics().end_span(
                  fetch_span, stats.ok, stats.bytes);
              if (!ctx->trace.ok) {
                fail_or_fallback(ctx, done);
                return;
              }
              if (config_.provide_after_fetch) {
                // Become a temporary provider (Section 3.1), without
                // affecting the measured retrieval.
                store_->pin(ctx->trace.cid);
                dht_.provide(dht::Key::for_cid(ctx->trace.cid),
                             [](dht::DhtNode::ProvideResult) {});
              }
              finish(ctx, done);
            });
      });
}

void IpfsNode::publish_name(const Cid& target, std::uint64_t sequence,
                            std::function<void(bool, int)> done) {
  if (name_resolver_) {
    name_resolver_->publish(keypair_, target, sequence, std::move(done));
    return;
  }
  ipns::publish(dht_, keypair_, target, sequence, std::move(done));
}

void IpfsNode::resolve_name(const multiformats::PeerId& name,
                            std::function<void(std::optional<Cid>)> done) {
  if (name_resolver_) {
    name_resolver_->resolve(name, std::move(done));
    return;
  }
  ipns::resolve(dht_, name, std::move(done));
}

void IpfsNode::follow_name(const multiformats::PeerId& name) {
  if (name_resolver_) name_resolver_->follow(name);
}

void IpfsNode::handle_crash() {
  // The router first: it cancels its in-flight walks through dht_ and
  // closes its spans while the lookup handles are still registered.
  router_->handle_crash();
  dht_.handle_crash();
  bitswap_.handle_crash();
  // Persistent backends drop their un-flushed tail and replay the log;
  // the in-memory store keeps everything (base-class no-op). A crashed
  // process's flush daemon dies with it — restart re-arms it.
  flush_timer_.cancel();
  store_->handle_crash();
  if (pubsub_) pubsub_->handle_crash();
  if (name_resolver_) name_resolver_->handle_crash();
  address_book_ = AddressBook(address_book_.capacity());
  conn_manager_.clear_protected();
}

void IpfsNode::handle_restart(std::vector<dht::PeerRef> seeds,
                              std::function<void(bool)> done) {
  dht_.handle_restart();
  if (pubsub_) pubsub_->handle_restart();
  // Re-subscribing must follow the engine restart so the fresh
  // subscriptions announce to the re-added bootstrap candidates.
  bootstrap(std::move(seeds), std::move(done));
  if (name_resolver_) name_resolver_->handle_restart();
  if (config_.store.flush_interval_us > 0) arm_flush_timer();
}

void IpfsNode::reset_for_next_measurement() {
  conn_manager_.disconnect_all();
  // Forget cached addresses so peer discovery exercises the DHT again
  // (the paper's controlled nodes disconnect between iterations for the
  // same reason, Section 4.3).
  address_book_ = AddressBook(address_book_.capacity());
}

void IpfsNode::disconnect_from(sim::NodeId peer) {
  transport_.disconnect(peer);
}

void IpfsNode::forget_peer_addresses() {
  address_book_ = AddressBook(address_book_.capacity());
}

}  // namespace ipfs::node
