#include "node/address_book.h"

namespace ipfs::node {

void AddressBook::insert(const dht::PeerRef& peer) {
  const auto it = entries_.find(peer.id);
  if (it != entries_.end()) {
    recency_.erase(it->second.recency);
    recency_.push_front(peer.id);
    it->second.peer = peer;
    it->second.recency = recency_.begin();
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(recency_.back());
    recency_.pop_back();
  }
  recency_.push_front(peer.id);
  entries_.emplace(peer.id, Entry{peer, recency_.begin()});
}

std::optional<dht::PeerRef> AddressBook::find(const multiformats::PeerId& id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  recency_.erase(it->second.recency);
  recency_.push_front(id);
  it->second.recency = recency_.begin();
  return it->second.peer;
}

void AddressBook::remove(const multiformats::PeerId& id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  recency_.erase(it->second.recency);
  entries_.erase(it);
}

}  // namespace ipfs::node
