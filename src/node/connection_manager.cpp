#include "node/connection_manager.h"

namespace ipfs::node {

ConnectionManager::ConnectionManager(sim::Network& network, sim::NodeId self,
                                     ConnManagerConfig config)
    : network_(network), self_(self), config_(config) {}

std::size_t ConnectionManager::trim() {
  const auto connections = network_.connections_of(self_);
  if (connections.size() <= config_.high_water) return 0;

  // The fabric does not expose per-connection open times, so eviction
  // order is the fabric's iteration order — effectively arbitrary among
  // unprotected peers, a fair stand-in for "least valuable first".
  std::size_t closed = 0;
  std::size_t remaining = connections.size();
  for (const sim::NodeId peer : connections) {
    if (remaining <= config_.low_water) break;
    if (protected_.contains(peer)) continue;
    network_.disconnect(self_, peer);
    ++closed;
    --remaining;
  }
  return closed;
}

std::size_t ConnectionManager::disconnect_all() {
  std::size_t closed = 0;
  // Copy: disconnect() mutates the fabric's live connection list.
  const std::vector<sim::NodeId> connections =
      network_.connections_of(self_);
  for (const sim::NodeId peer : connections) {
    if (protected_.contains(peer)) continue;
    network_.disconnect(self_, peer);
    ++closed;
  }
  return closed;
}

}  // namespace ipfs::node
