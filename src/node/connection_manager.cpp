#include "node/connection_manager.h"

namespace ipfs::node {

ConnectionManager::ConnectionManager(transport::Transport& transport,
                                     ConnManagerConfig config)
    : transport_(transport), config_(config) {}

std::size_t ConnectionManager::trim() {
  const auto connections = transport_.connections();
  if (connections.size() <= config_.high_water) return 0;

  // The fabric does not expose per-connection open times, so eviction
  // order is the fabric's iteration order — effectively arbitrary among
  // unprotected peers, a fair stand-in for "least valuable first".
  std::size_t closed = 0;
  std::size_t remaining = connections.size();
  for (const sim::NodeId peer : connections) {
    if (remaining <= config_.low_water) break;
    if (protected_.contains(peer)) continue;
    transport_.disconnect(peer);
    ++closed;
    --remaining;
  }
  return closed;
}

std::size_t ConnectionManager::disconnect_all() {
  std::size_t closed = 0;
  // connections() already returns a copy; disconnect() mutates the
  // backend's live connection list.
  const std::vector<sim::NodeId> connections = transport_.connections();
  for (const sim::NodeId peer : connections) {
    if (protected_.contains(peer)) continue;
    transport_.disconnect(peer);
    ++closed;
  }
  return closed;
}

}  // namespace ipfs::node
