#include "node/pinning_service.h"

namespace ipfs::node {

void PinningService::announce(const Cid& cid,
                              std::function<void(PinResult)> done) {
  node_.provide(cid, [this, cid, done = std::move(done)](PublishTrace trace) {
    PinResult result;
    result.ok = trace.ok;
    result.cid = cid;
    result.publish_time = trace.total;
    result.provider_records = trace.provider_records_sent;
    if (trace.ok) ++pinned_;
    done(result);
  });
}

void PinningService::pin_bytes(std::span<const std::uint8_t> data,
                               std::function<void(PinResult)> done) {
  const auto import = node_.add(data);  // add() pins the root
  announce(import.root, std::move(done));
}

void PinningService::pin_cid(const Cid& cid,
                             std::function<void(PinResult)> done) {
  // Already local (e.g. pinned earlier): just (re)announce.
  if (merkledag::cat(node_.store(), cid).has_value()) {
    node_.store().pin(cid);
    announce(cid, std::move(done));
    return;
  }
  node_.retrieve(cid, [this, cid, done = std::move(done)](
                          RetrievalTrace trace) {
    if (!trace.ok) {
      PinResult result;
      result.cid = cid;
      done(result);
      return;
    }
    node_.store().pin(cid);
    announce(cid, std::move(done));
  });
}

void PinningService::unpin(const Cid& cid) {
  node_.store().unpin(cid);
  node_.dht().stop_reproviding(dht::Key::for_cid(cid));
  if (pinned_ > 0) --pinned_;
}

}  // namespace ipfs::node
