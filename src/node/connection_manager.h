// Connection manager, modelled on the go-libp2p watermark design: when a
// node holds more than `high_water` connections, the least valuable ones
// are closed until `low_water` remain. Long DHT walks open dozens of
// short-lived connections; trimming them is why the provider-record RPC
// batch re-dials peers (and occasionally hits the Figure 9c timeouts).
#pragma once

#include <unordered_set>

#include "transport/transport.h"

namespace ipfs::node {

struct ConnManagerConfig {
  std::size_t low_water = 32;
  std::size_t high_water = 96;
  sim::Duration grace_period = sim::seconds(20);
};

class ConnectionManager {
 public:
  ConnectionManager(transport::Transport& transport, ConnManagerConfig config);

  // Never trim these peers (bootstrap peers, active transfer partners).
  void protect(sim::NodeId peer) { protected_.insert(peer); }
  void unprotect(sim::NodeId peer) { protected_.erase(peer); }
  // Drops every protection (process crash: the set is soft state).
  void clear_protected() { protected_.clear(); }

  // Closes unprotected connections down to low_water if the node exceeds
  // high_water. Returns how many were closed.
  std::size_t trim();

  // Closes every unprotected connection (the experiment harness does this
  // between retrievals, Section 4.3).
  std::size_t disconnect_all();

  std::size_t connection_count() const {
    return transport_.connections().size();
  }
  const ConnManagerConfig& config() const { return config_; }

 private:
  transport::Transport& transport_;
  ConnManagerConfig config_;
  std::unordered_set<sim::NodeId> protected_;
};

}  // namespace ipfs::node
