// Address book (paper Section 3.2, "Peer Discovery"): each IPFS node
// keeps the addresses of up to 900 recently seen peers, consulted before
// spending a second DHT walk on peer discovery.
#pragma once

#include <list>
#include <map>
#include <optional>

#include "dht/messages.h"
#include "multiformats/peerid.h"

namespace ipfs::node {

constexpr std::size_t kAddressBookCapacity = 900;

class AddressBook {
 public:
  explicit AddressBook(std::size_t capacity = kAddressBookCapacity)
      : capacity_(capacity) {}

  // Inserts or refreshes a peer (refresh moves it to most-recent).
  void insert(const dht::PeerRef& peer);

  // A hit also refreshes recency.
  std::optional<dht::PeerRef> find(const multiformats::PeerId& id);

  void remove(const multiformats::PeerId& id);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    dht::PeerRef peer;
    std::list<multiformats::PeerId>::iterator recency;
  };

  std::size_t capacity_;
  std::list<multiformats::PeerId> recency_;  // front = most recent
  std::map<multiformats::PeerId, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ipfs::node
