// The full IPFS node: block store + Merkle-DAG + Kademlia DHT + Bitswap,
// with the address book and connection manager on top. Implements the
// paper's publication pipeline (Section 3.1, steps 1-3 of Figure 3) and
// the four-phase retrieval pipeline (Section 3.2, steps 4-6), capturing
// per-phase timing traces for the Figure 9/10 experiments.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "bitswap/bitswap.h"
#include "blockstore/blockstore.h"
#include "blockstore/store_config.h"
#include "crypto/ed25519.h"
#include "dht/dht_node.h"
#include "ipns/ipns_pubsub.h"
#include "merkledag/merkledag.h"
#include "node/address_book.h"
#include "node/connection_manager.h"
#include "pubsub/pubsub.h"
#include "routing/router.h"

namespace ipfs::node {

using multiformats::Cid;

struct IpfsNodeConfig {
  sim::NodeConfig net;
  ConnManagerConfig conn_manager;
  std::uint64_t identity_seed = 0;
  // Become a temporary provider after a successful retrieval
  // (Section 3.1: "any peer that later retrieves the data becomes a
  // temporary content provider themselves").
  bool provide_after_fetch = true;
  // Bitswap discovery window before falling back to the DHT.
  sim::Duration bitswap_timeout = bitswap::kDiscoveryTimeout;
  // Skip the remainder of the Bitswap window once every connected peer
  // answered DONT_HAVE (the optimization discussed in Section 6.4).
  bool bitswap_early_exit = false;
  // Launch the DHT provider walk in parallel with the Bitswap window
  // instead of after it — the paper's proposed future-work optimization
  // ("running DHT lookups in parallel to Bitswap could be superior, by
  // trading additional network requests for faster retrieval times").
  bool parallel_dht_lookup = false;
  // GossipSub engine + IPNS-over-pubsub fast path (Section 2.6; off by
  // default, mirroring go-ipfs's --enable-namesys-pubsub experiment).
  bool enable_pubsub = false;
  pubsub::PubsubConfig pubsub;
  // Content-routing selection (docs/ROUTING.md): the DHT walk (default),
  // delegated network indexers, or a first-success race of both. With
  // indexers configured, provide/reprovide additionally pushes
  // advertisements to them.
  routing::RoutingConfig routing;
  // Eclipse defenses (docs/ADVERSARY.md). provider_quorum > 1 makes the
  // GetProviders walk gather that many distinct records before stopping;
  // bucket_diversity_cap > 0 bounds how many routing-table entries per
  // bucket may share a /16 IPv4 prefix. The defaults are the undefended
  // protocol.
  std::size_t provider_quorum = 1;
  std::size_t bucket_diversity_cap = 0;
  // Block store backend (docs/BLOCKSTORE.md). Defaults to the in-memory
  // store; kPersistentSync/kPersistentAsync put the node's blocks in a
  // log-structured store (on real files when `store.directory` is set,
  // e.g. ipfsd --store-dir) that survives handle_crash().
  blockstore::StoreConfig store;
};

// Timing decomposition of one publication (Figure 9a-c).
struct PublishTrace {
  bool ok = false;
  Cid cid;
  sim::Duration walk = 0;       // DHT walk to the 20 closest peers (9b)
  sim::Duration rpc_batch = 0;  // provider-record store batch (9c)
  sim::Duration total = 0;      // (9a)
  int provider_records_sent = 0;
};

// Timing decomposition of one retrieval (Figures 9d-f and 10).
struct RetrievalTrace {
  bool ok = false;
  Cid cid;
  bool local_hit = false;
  bool bitswap_hit = false;
  bool used_peer_walk = false;  // address book missed; second walk needed
  // Which routing path resolved the provider (kNone when the content
  // came from the local store or an opportunistic Bitswap hit, or when
  // provider discovery failed).
  routing::Source routing_source = routing::Source::kNone;

  sim::Duration bitswap_discovery = 0;  // opportunistic phase (<= 1 s)
  sim::Duration provider_walk = 0;      // DHT walk #1: provider record
  sim::Duration peer_walk = 0;          // DHT walk #2: peer record
  sim::Duration dial = 0;               // transport handshake (TCP-equivalent)
  sim::Duration negotiate = 0;          // security/mux (TLS-equivalent)
  sim::Duration fetch = 0;              // Bitswap content exchange (9f)
  sim::Duration total = 0;              // (9d)
  std::uint64_t bytes = 0;
  // The peer the content was fetched from (for connection management).
  sim::NodeId provider_node = sim::kInvalidNode;
  // Providers retried after the first record's fetch failed (populated
  // only when the walk returned more than one record, e.g. under a
  // provider quorum).
  int provider_fallbacks = 0;

  sim::Duration dht_walks() const { return provider_walk + peer_walk; }  // 9e
  sim::Duration discover() const {
    return bitswap_discovery + provider_walk + peer_walk;
  }

  // Retrieval stretch vs. an HTTPS GET of the same object (Equation 2).
  double stretch() const;
  // Stretch with the initial Bitswap window excluded (Figure 10b).
  double stretch_without_bitswap() const;
};

class IpfsNode {
 public:
  // Primary constructor: runs over any transport backend (simulated or
  // real sockets — the daemon in examples/ipfsd.cpp uses the latter).
  IpfsNode(transport::Transport& transport, const IpfsNodeConfig& config);
  // Simulator convenience: adds a fresh node (config.net) to the fabric
  // and wraps it in an owned SimTransport.
  IpfsNode(sim::Network& network, const IpfsNodeConfig& config);
  ~IpfsNode();

  // Joins the network (Section 2.2-2.3): dials the bootstrap peers, runs
  // AutoNAT, and populates the routing table via a self-lookup.
  void bootstrap(std::vector<dht::PeerRef> seeds,
                 std::function<void(bool)> done);

  // Imports content locally (step 1 of Figure 3): chunk, hash, build the
  // Merkle DAG. No network activity.
  merkledag::ImportResult add(std::span<const std::uint8_t> data);

  // Announces a locally stored object (steps 2-3): walk to the 20 closest
  // peers, then fire-and-forget provider records. Registers the CID for
  // 12 h republication. `max_records` caps how many of the closest peers
  // receive the record (k = 20 by default; the replication ablation bench
  // sweeps this).
  void provide(const Cid& cid, std::function<void(PublishTrace)> done,
               std::size_t max_records = dht::kReplication);

  // add() + provide() in one call.
  void publish(std::span<const std::uint8_t> data,
               std::function<void(PublishTrace)> done);

  // The four-phase retrieval (steps 4-6): opportunistic Bitswap, provider
  // discovery, peer discovery, peer routing, content exchange.
  void retrieve(const Cid& cid, std::function<void(RetrievalTrace)> done);

  // --- IPNS (Section 3.3 + the Section 2.6 pubsub fast path) --------------

  // Publishes a signed IPNS record mapping this node's PeerID to
  // `target`. With pubsub enabled the record is additionally broadcast to
  // the name's topic mesh; `done` always reports the DHT outcome.
  void publish_name(const Cid& target, std::uint64_t sequence,
                    std::function<void(bool ok, int replicas)> done);

  // Resolves `name`: pubsub cache first (when enabled), then the quorum
  // DHT walk. Picks the highest valid sequence on either path.
  void resolve_name(const multiformats::PeerId& name,
                    std::function<void(std::optional<Cid>)> done);

  // Subscribes to `name`'s record topic so future resolves answer from
  // the local cache. No-op without pubsub.
  void follow_name(const multiformats::PeerId& name);

  // --- Crash/restart (sim/faults.h) ---------------------------------------

  // Applies a process crash: every layer drops its soft state (in-flight
  // lookups and discoveries, routing table, address book, connection
  // protections) while the pinned blockstore survives on disk. Call from
  // a FaultPlan crash listener, after Network::set_online(node, false)
  // has muted the node's network callbacks.
  void handle_crash();

  // Restart after a crash: re-arms the DHT maintenance timers and
  // re-joins the network via bootstrap().
  void handle_restart(std::vector<dht::PeerRef> seeds,
                      std::function<void(bool)> done);

  // Experiment-harness helper (Section 4.3): drop every connection and
  // forget cached peer addresses so the next retrieval exercises the DHT.
  void reset_for_next_measurement();

  // Softer variants used between measurement iterations: the paper's
  // nodes disconnect from each other (so Bitswap cannot resolve the next
  // object) but keep their ambient DHT connections.
  void disconnect_from(sim::NodeId peer);
  void forget_peer_addresses();

  dht::DhtNode& dht() { return dht_; }
  bitswap::Bitswap& bitswap() { return bitswap_; }
  blockstore::BlockStore& store() { return *store_; }
  AddressBook& address_book() { return address_book_; }
  ConnectionManager& connection_manager() { return conn_manager_; }
  pubsub::Pubsub* pubsub() { return pubsub_.get(); }
  ipns::PubsubResolver* name_resolver() { return name_resolver_.get(); }
  routing::ContentRouter& router() { return *router_; }

  transport::Transport& transport() { return transport_; }
  dht::PeerRef self() const { return dht_.self(); }
  const crypto::Ed25519KeyPair& keypair() const { return keypair_; }
  sim::NodeId node() const { return node_; }

  // Deterministic identity derivation, shared with out-of-process tooling
  // (the ipfsd daemon derives every cluster member's PeerID from its
  // index with this).
  static crypto::Ed25519KeyPair derive_keypair(std::uint64_t seed);

 private:
  // Bridge for the sim convenience constructor: the owned backend is
  // parked in owned_transport_ after the primary constructor ran against
  // the reference.
  IpfsNode(std::unique_ptr<transport::Transport> transport,
           const IpfsNodeConfig& config);

  // Per-retrieval state. The timing fields of the trace are derived from
  // the metrics layer's spans (end_span returns the duration), and the
  // root span id travels with the retrieval — a member timestamp would be
  // corrupted by concurrent retrievals (the gateway serves many at once).
  struct RetrievalCtx {
    RetrievalTrace trace;
    metrics::SpanId span = 0;  // retrieve.total
    // Remaining provider records from the routing result, dialed in
    // discovery order when the current provider's fetch fails. Empty for
    // local/Bitswap hits.
    std::vector<dht::PeerRef> providers;
    std::size_t next_provider = 0;
  };

  void finish(const std::shared_ptr<RetrievalCtx>& ctx,
              const std::function<void(RetrievalTrace)>& done);
  void retrieve_parallel(std::shared_ptr<RetrievalCtx> ctx,
                         std::function<void(RetrievalTrace)> done);
  void finish_retrieval(std::shared_ptr<RetrievalCtx> ctx,
                        const dht::PeerRef& provider,
                        std::function<void(RetrievalTrace)> done);
  // Advances to the next provider record if one remains (dial or fetch
  // failed on the current one); otherwise delivers the failed trace.
  void fail_or_fallback(std::shared_ptr<RetrievalCtx> ctx,
                        std::function<void(RetrievalTrace)> done);
  void fetch_from(std::shared_ptr<RetrievalCtx> ctx, sim::NodeId peer,
                  std::function<void(RetrievalTrace)> done);

  // Single accounting point for a resolved (or failed) provider lookup:
  // stamps the trace, bumps routing.source.* / routing.latency.*, and
  // emits the retrieve.routing_source instant parented under the
  // retrieval's root span (so the winning source is derivable from the
  // JSONL trace alone).
  void record_routing_outcome(const std::shared_ptr<RetrievalCtx>& ctx,
                              routing::Source source, sim::Duration elapsed);

  // Declared first so an owned backend outlives every member that holds
  // the transport_ reference; null when the transport is external.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport& transport_;
  sim::NodeId node_;
  IpfsNodeConfig config_;
  crypto::Ed25519KeyPair keypair_;
  // Pointer, not value: the backend is chosen at runtime (store_config).
  std::unique_ptr<blockstore::BlockStore> store_;
  dht::DhtNode dht_;
  // References dht_, so member order is load-bearing.
  std::unique_ptr<routing::ContentRouter> router_;
  bitswap::Bitswap bitswap_;
  AddressBook address_book_;
  ConnectionManager conn_manager_;
  // Present only with config.enable_pubsub; the resolver references both
  // dht_ and *pubsub_, so member order is load-bearing.
  std::unique_ptr<pubsub::Pubsub> pubsub_;
  std::unique_ptr<ipns::PubsubResolver> name_resolver_;

  // Write-behind flush cadence (async persistent stores only).
  void arm_flush_timer();
  transport::Timer flush_timer_;
};

}  // namespace ipfs::node
