// Gateway request workload (paper Sections 4.2, 6.3): synthetic client
// traffic calibrated to the published aggregates of the ipfs.io gateway
// log — diurnal double-peak arrival rate (Figure 4b), Zipf content
// popularity, log-normal object sizes (Figure 11a) and the user-country
// mix of Figure 6.
#pragma once

#include <functional>
#include <vector>

#include "gateway/gateway.h"
#include "sim/rng.h"

namespace ipfs::gateway {
class GatewayFleet;
}

namespace ipfs::workload {

struct GatewayWorkloadConfig {
  std::size_t catalog_size = 300;
  double zipf_exponent = 1.0;
  // Fraction of catalog objects pinned in the gateway's node store (the
  // Web3/NFT Storage content, Section 3.4).
  double pinned_share = 0.58;
  // Object size distribution (Figure 11a: median 664.59 kB).
  double size_median_bytes = 600.0 * 1024;
  double size_sigma = 0.9;
  std::uint64_t size_cap_bytes = 4ull * 1024 * 1024;
  // Arrival process.
  std::uint64_t requests_total = 20000;
  sim::Duration duration = sim::hours(24);
  // Diurnal modulation depth (Figure 4b's swing around the mean rate).
  double diurnal_depth = 0.45;
};

struct RequestLogEntry {
  sim::Time timestamp = 0;
  int user_country = 0;  // index into world::countries()
  std::size_t catalog_rank = 0;
  gateway::ServedFrom source = gateway::ServedFrom::kFailed;
  sim::Duration latency = 0;
  std::uint64_t bytes = 0;
};

struct CatalogObject {
  multiformats::Cid cid;
  std::uint64_t size = 0;
  bool pinned = false;
  std::size_t host = 0;  // index of the content host serving it
};

// Drives one simulated day of traffic against a gateway whose catalog is
// hosted by `hosts` (provider nodes that have published the objects).
class GatewayWorkload {
 public:
  GatewayWorkload(const GatewayWorkloadConfig& config, sim::Rng rng);

  // Generates the catalog contents deterministically; returns the bytes
  // of object `rank` so hosts and the gateway can import them.
  std::vector<std::uint8_t> object_bytes(std::size_t rank) const;

  const GatewayWorkloadConfig& config() const { return config_; }
  std::vector<CatalogObject>& catalog() { return catalog_; }

  // Instantaneous arrival rate multiplier at `t` (diurnal pattern).
  double rate_multiplier(sim::Time t) const;

  // Schedules all requests onto the simulator, invoking the gateway per
  // request and appending to the log. Call simulator().run_until(end).
  void run(gateway::Gateway& gateway);
  // Same traffic through a fleet front end (consistent-hash routing).
  void run(gateway::GatewayFleet& fleet);

  const std::vector<RequestLogEntry>& log() const { return log_; }

 private:
  // Any request sink: a standalone gateway or a fleet front end. The
  // arrival process and the log are identical either way, so arms of an
  // ablation see the same request sequence.
  using RequestFn = std::function<void(
      const multiformats::Cid&, std::function<void(gateway::GatewayResponse)>)>;

  void run_with(transport::Transport& transport, RequestFn request);
  void schedule_next(std::uint64_t issued);
  std::size_t pick_rank();
  int pick_country();

  GatewayWorkloadConfig config_;
  sim::Rng rng_;
  std::vector<CatalogObject> catalog_;
  std::vector<double> country_weights_;
  std::vector<RequestLogEntry> log_;
  transport::Transport* transport_ = nullptr;
  RequestFn request_;
};

}  // namespace ipfs::workload
