#include "workload/gateway_workload.h"

#include <cmath>
#include <numbers>

#include "gateway/fleet.h"
#include "world/geography.h"

namespace ipfs::workload {

GatewayWorkload::GatewayWorkload(const GatewayWorkloadConfig& config,
                                 sim::Rng rng)
    : config_(config), rng_(rng) {
  // Catalog: sizes are drawn up front so hosts can import the objects.
  catalog_.reserve(config_.catalog_size);
  sim::Rng size_rng = rng_.fork("sizes");
  for (std::size_t i = 0; i < config_.catalog_size; ++i) {
    CatalogObject object;
    object.size = std::min<std::uint64_t>(
        config_.size_cap_bytes,
        static_cast<std::uint64_t>(size_rng.lognormal_median(
            config_.size_median_bytes, config_.size_sigma)));
    object.size = std::max<std::uint64_t>(object.size, 1024);
    object.pinned = size_rng.uniform() < config_.pinned_share;
    catalog_.push_back(object);
  }

  for (const auto& country : world::countries())
    country_weights_.push_back(country.gateway_user_share);
}

std::vector<std::uint8_t> GatewayWorkload::object_bytes(
    std::size_t rank) const {
  // Deterministic pseudo-random content: same rank, same bytes, so the
  // CID computed anywhere matches.
  sim::Rng content(0xC0FFEEu + static_cast<std::uint64_t>(rank) * 7919);
  std::vector<std::uint8_t> out(catalog_[rank].size);
  for (std::size_t i = 0; i + 8 <= out.size(); i += 8) {
    const std::uint64_t word = content.next();
    for (int b = 0; b < 8; ++b)
      out[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
  }
  return out;
}

double GatewayWorkload::rate_multiplier(sim::Time t) const {
  // Double-peaked diurnal curve (Figure 4b): the mean rate modulated by
  // a fundamental plus a half-day harmonic.
  const double day_fraction =
      static_cast<double>(t % sim::hours(24)) /
      static_cast<double>(sim::hours(24));
  const double angle = 2.0 * std::numbers::pi * day_fraction;
  const double wave = 0.7 * std::sin(angle - 1.2) + 0.3 * std::sin(2 * angle);
  return std::max(0.1, 1.0 + config_.diurnal_depth * wave);
}

std::size_t GatewayWorkload::pick_rank() {
  return static_cast<std::size_t>(rng_.zipf(catalog_.size(),
                                            config_.zipf_exponent)) -
         1;
}

int GatewayWorkload::pick_country() {
  double total = 0.0;
  for (const double w : country_weights_) total += w;
  double x = rng_.uniform() * total;
  for (std::size_t i = 0; i < country_weights_.size(); ++i) {
    x -= country_weights_[i];
    if (x <= 0.0) return static_cast<int>(i);
  }
  return 0;
}

void GatewayWorkload::run(gateway::Gateway& gateway) {
  run_with(gateway.node().transport(),
           [&gateway](const multiformats::Cid& cid,
                      std::function<void(gateway::GatewayResponse)> done) {
             gateway.handle_get(cid, std::move(done));
           });
}

void GatewayWorkload::run(gateway::GatewayFleet& fleet) {
  run_with(fleet.replica(0).node().transport(),
           [&fleet](const multiformats::Cid& cid,
                    std::function<void(gateway::GatewayResponse)> done) {
             fleet.handle_get(cid, std::move(done));
           });
}

void GatewayWorkload::run_with(transport::Transport& transport,
                               RequestFn request) {
  transport_ = &transport;
  request_ = std::move(request);
  log_.clear();
  log_.reserve(config_.requests_total);
  schedule_next(0);
}

void GatewayWorkload::schedule_next(std::uint64_t issued) {
  if (issued >= config_.requests_total) return;

  // Non-homogeneous Poisson arrivals: the base inter-arrival time is
  // stretched or squeezed by the diurnal rate multiplier.
  const double base_gap_us =
      static_cast<double>(config_.duration) /
      static_cast<double>(config_.requests_total);
  const double gap =
      rng_.exponential(base_gap_us / rate_multiplier(transport_->now()));

  transport_->schedule_after(
      static_cast<sim::Duration>(gap), [this, issued] {
        const std::size_t rank = pick_rank();
        const int country = pick_country();
        const sim::Time issued_at = transport_->now();
        request_(
            catalog_[rank].cid,
            [this, rank, country, issued_at](gateway::GatewayResponse r) {
              RequestLogEntry entry;
              entry.timestamp = issued_at;
              entry.user_country = country;
              entry.catalog_rank = rank;
              entry.source = r.source;
              entry.latency = r.latency;
              entry.bytes = r.bytes;
              log_.push_back(entry);
            });
        schedule_next(issued + 1);
      });
}

}  // namespace ipfs::workload
