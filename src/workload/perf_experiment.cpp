#include "workload/perf_experiment.h"

#include "world/geography.h"

namespace ipfs::workload {

const std::vector<PerfRegion>& aws_regions() {
  static const std::vector<PerfRegion> kRegions = {
      {"af_south_1", world::kAfSouth},     {"ap_southeast_2", world::kApSoutheast},
      {"eu_central_1", world::kEuCentral}, {"me_south_1", world::kMeSouth},
      {"sa_east_1", world::kSaEast},       {"us_west_1", world::kUsWest},
  };
  return kRegions;
}

std::vector<double> PerfResults::all_publish_totals_seconds() const {
  std::vector<double> out;
  for (const auto& [region, traces] : publishes)
    for (const auto& trace : traces) out.push_back(sim::to_seconds(trace.total));
  return out;
}

std::vector<double> PerfResults::all_retrieval_totals_seconds() const {
  std::vector<double> out;
  for (const auto& [region, traces] : retrievals)
    for (const auto& trace : traces)
      if (trace.ok) out.push_back(sim::to_seconds(trace.total));
  return out;
}

std::size_t PerfResults::publish_count() const {
  std::size_t count = 0;
  for (const auto& [region, traces] : publishes) count += traces.size();
  return count;
}

std::size_t PerfResults::retrieval_count() const {
  std::size_t count = 0;
  for (const auto& [region, traces] : retrievals) count += traces.size();
  return count;
}

std::size_t PerfResults::retrieval_successes() const {
  std::size_t count = 0;
  for (const auto& [region, traces] : retrievals)
    for (const auto& trace : traces)
      if (trace.ok) ++count;
  return count;
}

PerfExperiment::PerfExperiment(world::World& world,
                               const PerfExperimentConfig& config)
    : world_(world),
      config_(config),
      content_rng_(sim::Rng(world.config().seed).fork("perf-content")) {
  // One t2.small-equivalent node per region: dialable, TCP, modest
  // bandwidth (the AWS instances of Section 4.3).
  for (std::size_t i = 0; i < aws_regions().size(); ++i) {
    node::IpfsNodeConfig node_config;
    node_config.net.region = aws_regions()[i].region;
    node_config.net.dialable = true;
    node_config.net.transport = sim::Transport::kTcp;
    node_config.net.upload_bytes_per_sec = 30.0 * 1024 * 1024;
    node_config.net.download_bytes_per_sec = 60.0 * 1024 * 1024;
    // Small watermarks relative to the simulated swarm so lookup
    // connections get trimmed like go-ipfs's connection manager trims
    // them on the real network.
    node_config.conn_manager = {.low_water = 8, .high_water = 24};
    node_config.identity_seed = 0xAE50000 + i;
    node_config.provide_after_fetch = false;  // keep iterations independent
    node_config.bitswap_early_exit = config.bitswap_early_exit;
    node_config.parallel_dht_lookup = config.parallel_dht_lookup;
    nodes_.push_back(
        std::make_unique<node::IpfsNode>(world_.network(), node_config));
  }
}

void PerfExperiment::bootstrap_nodes(std::size_t index,
                                     std::function<void()> done) {
  if (index >= nodes_.size()) {
    done();
    return;
  }
  nodes_[index]->bootstrap(world_.bootstrap_refs(),
                           [this, index, done = std::move(done)](bool) {
                             bootstrap_nodes(index + 1, std::move(done));
                           });
}

void PerfExperiment::run(std::function<void()> done) {
  bootstrap_nodes(0, [this, done = std::move(done)] {
    run_cycle(0, std::move(done));
  });
}

void PerfExperiment::run_cycle(std::size_t cycle, std::function<void()> done) {
  if (cycle >= config_.cycles) {
    done();
    return;
  }

  const std::size_t publisher = cycle % nodes_.size();
  const std::string& publisher_region = aws_regions()[publisher].name;

  // Fresh 0.5 MB object every iteration (Section 4.3).
  std::vector<std::uint8_t> content(config_.object_bytes);
  for (std::size_t i = 0; i + 8 <= content.size(); i += 8) {
    const std::uint64_t word = content_rng_.next();
    for (int b = 0; b < 8; ++b)
      content[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
  }

  nodes_[publisher]->publish(
      content,
      [this, cycle, publisher, publisher_region,
       done = std::move(done)](node::PublishTrace publish_trace) {
        results_.publishes[publisher_region].push_back(publish_trace);
        if (!publish_trace.ok) {
          // Nothing to retrieve; move on.
          world_.network().schedule_after(
              config_.gap_between_cycles,
              [this, cycle, done = std::move(done)] {
                run_cycle(cycle + 1, std::move(done));
              });
          return;
        }

        // All other nodes retrieve the object concurrently.
        auto remaining = std::make_shared<int>(
            static_cast<int>(nodes_.size()) - 1);
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          if (i == publisher) continue;
          const std::string& region = aws_regions()[i].name;
          nodes_[i]->retrieve(
              publish_trace.cid,
              [this, cycle, region, remaining,
               done](node::RetrievalTrace trace) {
                results_.retrievals[region].push_back(trace);
                if (--*remaining > 0) return;
                // Iteration complete: the controlled nodes disconnect
                // from each other so the next retrieval resolves through
                // the DHT rather than Bitswap (Section 4.3); ambient DHT
                // connections persist, as on the live network.
                for (auto& a : nodes_) {
                  a->forget_peer_addresses();
                  for (auto& b : nodes_) {
                    if (a != b) a->disconnect_from(b->node());
                  }
                }
                world_.network().schedule_after(
                    config_.gap_between_cycles, [this, cycle, done] {
                      run_cycle(cycle + 1, done);
                    });
              });
        }
      });
}

}  // namespace ipfs::workload
