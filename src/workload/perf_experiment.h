// The controlled performance experiment of paper Section 4.3: six IPFS
// nodes in six AWS regions join the (simulated) public network. Each
// iteration, one node publishes a fresh 0.5 MB object; the other five
// retrieve it; then everyone disconnects so the next iteration exercises
// the DHT rather than Bitswap.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "node/ipfs_node.h"
#include "world/world.h"

namespace ipfs::workload {

struct PerfRegion {
  std::string name;  // AWS region label used in the paper's tables
  int region;        // world latency region
};

// The six measurement regions (Table 1).
const std::vector<PerfRegion>& aws_regions();

struct PerfExperimentConfig {
  std::size_t cycles = 60;  // publications, round-robin over regions
  std::size_t object_bytes = 512 * 1024;  // 0.5 MB (Section 4.3)
  sim::Duration gap_between_cycles = sim::seconds(20);
  bool bitswap_early_exit = false;  // Figure 10b's what-if toggle
  bool parallel_dht_lookup = false;  // Section 6.4's proposed optimization
};

struct PerfResults {
  std::map<std::string, std::vector<node::PublishTrace>> publishes;
  std::map<std::string, std::vector<node::RetrievalTrace>> retrievals;

  std::vector<double> all_publish_totals_seconds() const;
  std::vector<double> all_retrieval_totals_seconds() const;
  std::size_t publish_count() const;
  std::size_t retrieval_count() const;
  std::size_t retrieval_successes() const;
};

class PerfExperiment {
 public:
  PerfExperiment(world::World& world, const PerfExperimentConfig& config);

  // Schedules the whole experiment; `done` fires when the last cycle
  // completes. Drive with world.simulator().run().
  void run(std::function<void()> done);

  const PerfResults& results() const { return results_; }
  node::IpfsNode& node(std::size_t i) { return *nodes_[i]; }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  void bootstrap_nodes(std::size_t index, std::function<void()> done);
  void run_cycle(std::size_t cycle, std::function<void()> done);

  world::World& world_;
  PerfExperimentConfig config_;
  std::vector<std::unique_ptr<node::IpfsNode>> nodes_;
  PerfResults results_;
  sim::Rng content_rng_;
};

}  // namespace ipfs::workload
