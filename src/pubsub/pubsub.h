// GossipSub-style pubsub engine on the discrete-event simulator.
//
// The paper (Section 2.6) notes that IPNS resolution over the DHT is slow
// enough that go-ipfs ships an experimental pubsub fast path; this module
// supplies the mesh overlay that fast path rides on. The model follows
// libp2p gossipsub v1.1's structure:
//
//   - per-topic *mesh*: a bidirectional overlay of grafted peers kept
//     between D_lo and D_hi members (target D) by a heartbeat timer;
//     full messages are eagerly pushed along mesh edges,
//   - GRAFT/PRUNE control messages grow and shrink the mesh; PRUNE
//     carries peer-exchange (px) candidates so pruned peers can re-mesh,
//   - IHAVE/IWANT lazy gossip: at each heartbeat, recent message ids from
//     a bounded message cache are advertised to non-mesh topic peers,
//     which request anything they missed,
//   - *fanout* for publishers not subscribed to the topic: a cached peer
//     set used for publishing only, expiring after fanout_ttl,
//   - message-id dedup via a bounded seen-cache, so each subscriber
//     delivers any message at most once.
//
// Peer discovery is ambient: the engine is told about candidate peers
// (bootstrap seeds, scenario wiring, px) and learns topic interest from
// subscription announcements on the resulting connections. All traffic
// goes through transport::Transport datagrams, so under the simulator
// backend fault injection (drops, resets, churn) exercises mesh repair
// exactly like any other protocol.
//
// Divergences from the libp2p spec are documented in docs/PUBSUB.md.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "sim/rng.h"
#include "transport/transport.h"

namespace ipfs::pubsub {

using Topic = std::string;

// Gossipsub identifies messages by (origin, per-origin seqno), so dedup
// and IHAVE advertisements cost 12 bytes per id instead of a hash.
struct MessageId {
  sim::NodeId origin = sim::kInvalidNode;
  std::uint64_t seqno = 0;

  bool operator==(const MessageId&) const = default;
  auto operator<=>(const MessageId&) const = default;
};

struct PubsubMessage {
  MessageId id;
  Topic topic;
  std::vector<std::uint8_t> data;
};

// --- Wire format -----------------------------------------------------------
// One RPC bundles subscription changes, full messages and control frames,
// mirroring the gossipsub protobuf's RPC envelope.

struct SubOpts {
  Topic topic;
  bool subscribe = true;
};

struct ControlIHave {
  Topic topic;
  std::vector<MessageId> ids;
};

struct ControlIWant {
  std::vector<MessageId> ids;
};

struct ControlGraft {
  Topic topic;
};

struct ControlPrune {
  Topic topic;
  std::vector<sim::NodeId> px;  // peer exchange: other topic members
};

struct GossipRpc : sim::Message {
  std::vector<SubOpts> subscriptions;
  // Marks a subscription announce sent in reply to another announce.
  // libp2p peers exchange subscriptions when a connection opens (both
  // directions); datagrams have no connection-open hook, so the receiver
  // of a plain announce always answers with its own interest, and this
  // flag keeps the exchange to one round trip. Without the reply, a
  // crash-restarted node re-announcing to peers that still remember it
  // would never re-learn who is subscribed.
  bool announce_reply = false;
  std::vector<PubsubMessage> publish;
  std::vector<ControlIHave> ihave;
  std::vector<ControlIWant> iwant;
  std::vector<ControlGraft> graft;
  std::vector<ControlPrune> prune;

  bool empty() const {
    return subscriptions.empty() && publish.empty() && ihave.empty() &&
           iwant.empty() && graft.empty() && prune.empty();
  }

  sim::MessageKind kind() const override {
    return sim::MessageKind::kGossipRpc;
  }

  // Approximate serialized size, used for bandwidth modelling.
  std::size_t wire_bytes() const;
};

// --- Engine ------------------------------------------------------------------

struct PubsubConfig {
  // Mesh degree bounds (libp2p gossipsub defaults).
  int degree = 6;      // D: target mesh degree
  int degree_lo = 4;   // D_lo: graft below this
  int degree_hi = 12;  // D_hi: prune above this
  int gossip_degree = 6;     // D_lazy: IHAVE targets per heartbeat
  std::size_t prune_px = 6;  // peers exchanged in a PRUNE

  sim::Duration heartbeat_interval = sim::seconds(1);
  std::size_t history_length = 5;  // mcache windows kept for IWANT
  std::size_t history_gossip = 3;  // windows advertised via IHAVE
  sim::Duration fanout_ttl = sim::seconds(60);
  std::size_t seen_capacity = 8192;  // dedup cache entries (FIFO eviction)

  // Seed for the engine's private rng stream (mesh/gossip peer sampling).
  // The engine never draws from the network fabric's rng, so enabling
  // pubsub leaves every pre-existing seeded stream bit-identical.
  std::uint64_t seed = 0;

  PubsubConfig& with_degree(int d, int lo, int hi) {
    degree = d;
    degree_lo = lo;
    degree_hi = hi;
    return *this;
  }
  PubsubConfig& with_heartbeat(sim::Duration interval) {
    heartbeat_interval = interval;
    return *this;
  }
  PubsubConfig& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
};

class Pubsub {
 public:
  using DeliverFn = std::function<void(const PubsubMessage&)>;

  explicit Pubsub(transport::Transport& transport, PubsubConfig config = {});
  // Simulator convenience: wraps fabric node `node` in an owned
  // SimTransport (harness/test construction path).
  Pubsub(sim::Network& network, sim::NodeId node, PubsubConfig config = {});
  ~Pubsub();

  Pubsub(const Pubsub&) = delete;
  Pubsub& operator=(const Pubsub&) = delete;

  // Joins `topic`: announces the subscription to every known candidate
  // peer; the next heartbeats graft a mesh. `deliver` fires at most once
  // per message id.
  void subscribe(const Topic& topic, DeliverFn deliver);

  // Leaves `topic`: PRUNEs the mesh and announces the unsubscription.
  void unsubscribe(const Topic& topic);

  bool subscribed(const Topic& topic) const;

  // Publishes to the mesh (when subscribed) or the fanout set (when not).
  // The local subscriber, if any, delivers immediately.
  MessageId publish(const Topic& topic, std::vector<std::uint8_t> data);

  // Ambient peer discovery: makes `peer` a candidate for meshes and
  // gossip, announcing any current subscriptions to it.
  void add_candidate_peer(sim::NodeId peer);

  // Datagram dispatch; returns false when `message` is not a GossipRpc
  // (so a protocol multiplexer can try other handlers).
  bool handle_message(sim::NodeId from, const sim::MessagePtr& message);

  // --- Crash/restart (sim/faults.h) ---------------------------------------
  // A crash drops all soft state: subscriptions, meshes, caches and the
  // candidate set (the address book analogue). The application re-adds
  // candidates and re-subscribes after restart, mirroring how a real
  // daemon rebuilds pubsub state from its topic list on boot.
  void handle_crash();
  void handle_restart();

  // --- Introspection --------------------------------------------------------
  std::vector<sim::NodeId> mesh_peers(const Topic& topic) const;
  std::vector<sim::NodeId> topic_peers(const Topic& topic) const;
  const PubsubConfig& config() const { return config_; }
  sim::NodeId node() const { return node_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t duplicates_suppressed() const { return duplicates_; }

 private:
  Pubsub(std::unique_ptr<transport::Transport> transport, PubsubConfig config);

  struct TopicState {
    bool subscribed = false;
    DeliverFn deliver;
    // Remote peers known to be subscribed (announcements + px),
    // insertion-ordered for deterministic sampling.
    std::vector<sim::NodeId> peers;
    std::vector<sim::NodeId> mesh;    // grafted subset of `peers`
    std::vector<sim::NodeId> fanout;  // publish targets when unsubscribed
    sim::Time fanout_expires = 0;
    metrics::SpanId join_span = 0;  // pubsub.join: subscribe -> mesh formed
  };

  void accept_message(sim::NodeId from, const PubsubMessage& message);
  void forward_to_mesh(const PubsubMessage& message, sim::NodeId arrived_from);
  void publish_via_fanout(TopicState& state, const Topic& topic,
                          const PubsubMessage& message);
  void heartbeat();
  void maintain_mesh(const Topic& topic, TopicState& state);
  void emit_gossip(const Topic& topic, TopicState& state);
  void shift_mcache();
  void mark_seen(const MessageId& id);
  bool seen(const MessageId& id) const { return seen_set_.contains(id); }
  void remember_candidate(sim::NodeId peer);
  void announce_subscriptions(sim::NodeId peer, std::vector<SubOpts> subs,
                              bool reply = false);
  void send_rpc(sim::NodeId to, std::shared_ptr<GossipRpc> rpc);
  void ensure_connected(sim::NodeId peer, std::function<void(bool)> then);
  // Removes up to `want` members chosen uniformly from `pool` (partial
  // Fisher-Yates on the engine's private rng).
  std::vector<sim::NodeId> sample(std::vector<sim::NodeId> pool,
                                  std::size_t want);
  void arm_heartbeat();

  // Declared first so an owned backend outlives transport_ users.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport& transport_;
  sim::NodeId node_;
  PubsubConfig config_;
  sim::Rng rng_;
  transport::Timer heartbeat_timer_;
  sim::Duration heartbeat_phase_ = 0;  // deterministic per-node stagger

  std::map<Topic, TopicState> topics_;
  std::vector<sim::NodeId> candidates_;

  // Dedup cache: FIFO-evicted once seen_capacity ids are tracked.
  std::set<MessageId> seen_set_;
  std::deque<MessageId> seen_order_;

  // Message cache (mcache): history windows of ids plus the full payloads
  // for answering IWANT. Window 0 is the current heartbeat.
  std::deque<std::vector<MessageId>> mcache_windows_;
  std::map<MessageId, PubsubMessage> mcache_;

  // Ids requested via IWANT and not yet delivered (for the
  // gossip-recovery counter).
  std::set<MessageId> iwant_pending_;

  std::uint64_t next_seqno_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace ipfs::pubsub
