#include "pubsub/pubsub.h"

#include <algorithm>
#include <utility>

#include "transport/sim_transport.h"

namespace ipfs::pubsub {

namespace {

constexpr std::size_t kRpcBaseBytes = 16;
constexpr std::size_t kMessageIdBytes = 12;  // origin (4) + seqno (8)

// Mixes the node id into the engine seed so every engine draws an
// independent stream even when a scenario hands all of them the same
// config seed.
std::uint64_t engine_seed(std::uint64_t seed, sim::NodeId node) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(node) + 1));
}

}  // namespace

std::size_t GossipRpc::wire_bytes() const {
  std::size_t bytes = kRpcBaseBytes;
  for (const auto& sub : subscriptions) bytes += sub.topic.size() + 2;
  for (const auto& message : publish)
    bytes += message.topic.size() + message.data.size() + kMessageIdBytes + 4;
  for (const auto& control : ihave)
    bytes += control.topic.size() + control.ids.size() * kMessageIdBytes + 4;
  for (const auto& control : iwant)
    bytes += control.ids.size() * kMessageIdBytes + 4;
  for (const auto& control : graft) bytes += control.topic.size() + 4;
  for (const auto& control : prune)
    bytes += control.topic.size() + control.px.size() * 4 + 4;
  return bytes;
}

Pubsub::Pubsub(transport::Transport& transport, PubsubConfig config)
    : transport_(transport),
      node_(transport.local()),
      config_(config),
      rng_(sim::Rng(engine_seed(config.seed, node_)).fork("pubsub")) {
  // Stagger heartbeats across the swarm so 10k engines don't fire in one
  // simulated instant. The phase comes from the engine's private stream,
  // so it is deterministic in (seed, node).
  heartbeat_phase_ = static_cast<sim::Duration>(rng_.uniform_int(
      0, std::max<std::int64_t>(config_.heartbeat_interval - 1, 0)));
  mcache_windows_.emplace_back();
  arm_heartbeat();
}

Pubsub::Pubsub(std::unique_ptr<transport::Transport> transport,
               PubsubConfig config)
    : Pubsub(*transport, config) {
  owned_transport_ = std::move(transport);
}

Pubsub::Pubsub(sim::Network& network, sim::NodeId node, PubsubConfig config)
    : Pubsub(std::make_unique<transport::SimTransport>(network, node),
             config) {}

Pubsub::~Pubsub() { heartbeat_timer_.cancel(); }

void Pubsub::arm_heartbeat() {
  const sim::Duration delay =
      heartbeat_phase_ > 0 ? heartbeat_phase_ : config_.heartbeat_interval;
  heartbeat_phase_ = 0;  // only the first arm is phase-shifted
  heartbeat_timer_ =
      transport_.schedule_daemon_after(delay, [this] {
        heartbeat();
        arm_heartbeat();
      });
}

void Pubsub::subscribe(const Topic& topic, DeliverFn deliver) {
  TopicState& state = topics_[topic];
  state.subscribed = true;
  state.deliver = std::move(deliver);
  state.fanout.clear();  // mesh supersedes fanout
  state.fanout_expires = 0;
  if (state.join_span == 0)
    state.join_span =
        transport_.metrics().begin_span("pubsub.join", node_, topic);
  transport_.metrics().counter("pubsub.subscribe").inc();

  // Announce to everyone we know; interested peers respond in kind and
  // the next heartbeats graft a mesh.
  for (const sim::NodeId peer : candidates_)
    announce_subscriptions(peer, {{topic, true}});
}

void Pubsub::unsubscribe(const Topic& topic) {
  const auto it = topics_.find(topic);
  if (it == topics_.end() || !it->second.subscribed) return;
  TopicState& state = it->second;
  state.subscribed = false;
  state.deliver = nullptr;
  if (state.join_span != 0) {
    transport_.metrics().end_span(state.join_span, false);
    state.join_span = 0;
  }
  transport_.metrics().counter("pubsub.unsubscribe").inc();

  // PRUNE the mesh, then tell every other known peer we are gone.
  const std::vector<sim::NodeId> old_mesh = std::move(state.mesh);
  state.mesh.clear();
  for (const sim::NodeId peer : old_mesh) {
    auto rpc = std::make_shared<GossipRpc>();
    rpc->prune.push_back({topic, {}});
    rpc->subscriptions.push_back({topic, false});
    transport_.metrics().counter("pubsub.prune_sent").inc();
    send_rpc(peer, std::move(rpc));
  }
  for (const sim::NodeId peer : candidates_) {
    if (std::find(old_mesh.begin(), old_mesh.end(), peer) != old_mesh.end())
      continue;  // already told above
    announce_subscriptions(peer, {{topic, false}});
  }
}

bool Pubsub::subscribed(const Topic& topic) const {
  const auto it = topics_.find(topic);
  return it != topics_.end() && it->second.subscribed;
}

MessageId Pubsub::publish(const Topic& topic, std::vector<std::uint8_t> data) {
  PubsubMessage message;
  message.id = MessageId{node_, next_seqno_++};
  message.topic = topic;
  message.data = std::move(data);

  mark_seen(message.id);
  mcache_windows_.front().push_back(message.id);
  mcache_[message.id] = message;
  transport_.metrics().counter("pubsub.publish").inc();
  transport_.metrics().instant("pubsub.publish", node_, topic,
                             message.id.seqno);

  TopicState& state = topics_[topic];
  if (state.subscribed) {
    if (state.deliver) {
      ++delivered_;
      transport_.metrics().counter("pubsub.deliver").inc();
      state.deliver(message);
    }
    forward_to_mesh(message, sim::kInvalidNode);
  } else {
    publish_via_fanout(state, topic, message);
  }
  return message.id;
}

void Pubsub::publish_via_fanout(TopicState& state, const Topic& topic,
                                const PubsubMessage& message) {
  const sim::Time now = transport_.now();
  // Drop fanout members that stopped being topic peers, then top up.
  std::erase_if(state.fanout, [&](sim::NodeId peer) {
    return std::find(state.peers.begin(), state.peers.end(), peer) ==
           state.peers.end();
  });
  if (state.fanout.size() < static_cast<std::size_t>(config_.degree)) {
    std::vector<sim::NodeId> pool;
    for (const sim::NodeId peer : state.peers)
      if (std::find(state.fanout.begin(), state.fanout.end(), peer) ==
          state.fanout.end())
        pool.push_back(peer);
    for (const sim::NodeId peer : sample(
             std::move(pool),
             static_cast<std::size_t>(config_.degree) - state.fanout.size()))
      state.fanout.push_back(peer);
  }
  state.fanout_expires = now + config_.fanout_ttl;

  for (const sim::NodeId peer : state.fanout) {
    auto rpc = std::make_shared<GossipRpc>();
    rpc->publish.push_back(message);
    transport_.metrics().counter("pubsub.fanout_sent").inc();
    send_rpc(peer, std::move(rpc));
  }
  (void)topic;
}

void Pubsub::add_candidate_peer(sim::NodeId peer) {
  remember_candidate(peer);
  std::vector<SubOpts> subs;
  for (const auto& [topic, state] : topics_)
    if (state.subscribed) subs.push_back({topic, true});
  if (!subs.empty()) announce_subscriptions(peer, std::move(subs));
}

void Pubsub::remember_candidate(sim::NodeId peer) {
  if (peer == node_ || peer == sim::kInvalidNode) return;
  if (std::find(candidates_.begin(), candidates_.end(), peer) !=
      candidates_.end())
    return;
  candidates_.push_back(peer);
}

void Pubsub::announce_subscriptions(sim::NodeId peer, std::vector<SubOpts> subs,
                                    bool reply) {
  auto rpc = std::make_shared<GossipRpc>();
  rpc->subscriptions = std::move(subs);
  rpc->announce_reply = reply;
  send_rpc(peer, std::move(rpc));
}

void Pubsub::send_rpc(sim::NodeId to, std::shared_ptr<GossipRpc> rpc) {
  if (rpc->empty()) return;
  const std::size_t bytes = rpc->wire_bytes();
  transport_.metrics().counter("pubsub.rpc_bytes").inc(bytes);
  ensure_connected(to, [this, to, rpc = std::move(rpc), bytes](bool ok) {
    if (!ok) return;  // dial failed; gossip is best-effort
    transport_.send(to, rpc, bytes);
  });
}

void Pubsub::ensure_connected(sim::NodeId peer,
                              std::function<void(bool)> then) {
  if (transport_.connected(peer)) {
    then(true);
    return;
  }
  transport_.connect(peer,
                   [then = std::move(then)](bool ok, sim::Duration) {
                     then(ok);
                   });
}

bool Pubsub::handle_message(sim::NodeId from, const sim::MessagePtr& message) {
  const auto* rpc = dynamic_cast<const GossipRpc*>(message.get());
  if (rpc == nullptr) return false;
  remember_candidate(from);

  std::vector<SubOpts> announce_back;
  for (const auto& sub : rpc->subscriptions) {
    TopicState& state = topics_[sub.topic];
    auto it = std::find(state.peers.begin(), state.peers.end(), from);
    if (sub.subscribe) {
      if (it == state.peers.end()) state.peers.push_back(from);
      // Symmetric subscription exchange (see GossipRpc::announce_reply):
      // every plain announce gets our interest in reply — even from a
      // peer we already track, because the *sender* may have crashed and
      // lost its view of us. The reply flag stops the ping-pong.
      if (state.subscribed && !rpc->announce_reply)
        announce_back.push_back({sub.topic, true});
    } else {
      if (it != state.peers.end()) state.peers.erase(it);
      std::erase(state.mesh, from);
      std::erase(state.fanout, from);
    }
  }
  if (!announce_back.empty())
    announce_subscriptions(from, std::move(announce_back), /*reply=*/true);

  for (const auto& graft : rpc->graft) {
    transport_.metrics().counter("pubsub.graft_recv").inc();
    const auto it = topics_.find(graft.topic);
    if (it == topics_.end() || !it->second.subscribed) {
      // Not subscribed: refuse the graft so the peer looks elsewhere.
      auto reply = std::make_shared<GossipRpc>();
      reply->prune.push_back({graft.topic, {}});
      transport_.metrics().counter("pubsub.prune_sent").inc();
      send_rpc(from, std::move(reply));
      continue;
    }
    TopicState& state = it->second;
    if (std::find(state.peers.begin(), state.peers.end(), from) ==
        state.peers.end())
      state.peers.push_back(from);  // a graft implies topic interest
    if (std::find(state.mesh.begin(), state.mesh.end(), from) ==
        state.mesh.end()) {
      state.mesh.push_back(from);
      transport_.metrics().instant("pubsub.mesh_add", node_, graft.topic, 0,
                                 from);
      if (state.join_span != 0) {
        transport_.metrics().end_span(state.join_span, true);
        state.join_span = 0;
      }
    }
  }

  for (const auto& prune : rpc->prune) {
    transport_.metrics().counter("pubsub.prune_recv").inc();
    const auto it = topics_.find(prune.topic);
    if (it == topics_.end()) continue;
    TopicState& state = it->second;
    if (std::erase(state.mesh, from) > 0)
      transport_.metrics().instant("pubsub.mesh_drop", node_, prune.topic, 0,
                                 from);
    // Peer-exchange: the pruned peer hands us other topic members.
    for (const sim::NodeId px : prune.px) {
      if (px == node_ || px == from) continue;
      remember_candidate(px);
      if (std::find(state.peers.begin(), state.peers.end(), px) ==
          state.peers.end()) {
        state.peers.push_back(px);
        transport_.metrics().counter("pubsub.px_learned").inc();
      }
    }
  }

  for (const auto& message_in : rpc->publish) accept_message(from, message_in);

  for (const auto& ihave : rpc->ihave) {
    transport_.metrics().counter("pubsub.ihave_recv").inc();
    const auto it = topics_.find(ihave.topic);
    if (it == topics_.end() || !it->second.subscribed) continue;
    ControlIWant want;
    for (const MessageId& id : ihave.ids) {
      if (seen(id) || iwant_pending_.contains(id)) continue;
      iwant_pending_.insert(id);
      want.ids.push_back(id);
    }
    if (!want.ids.empty()) {
      auto reply = std::make_shared<GossipRpc>();
      reply->iwant.push_back(std::move(want));
      transport_.metrics().counter("pubsub.iwant_sent").inc();
      send_rpc(from, std::move(reply));
    }
  }

  for (const auto& iwant : rpc->iwant) {
    transport_.metrics().counter("pubsub.iwant_recv").inc();
    auto reply = std::make_shared<GossipRpc>();
    for (const MessageId& id : iwant.ids) {
      const auto it = mcache_.find(id);
      if (it != mcache_.end()) reply->publish.push_back(it->second);
    }
    if (!reply->publish.empty()) send_rpc(from, std::move(reply));
  }

  return true;
}

void Pubsub::accept_message(sim::NodeId from, const PubsubMessage& message) {
  if (seen(message.id)) {
    ++duplicates_;
    transport_.metrics().counter("pubsub.duplicate").inc();
    return;
  }
  mark_seen(message.id);
  if (iwant_pending_.erase(message.id) > 0)
    transport_.metrics().counter("pubsub.gossip_recovered").inc();
  mcache_windows_.front().push_back(message.id);
  mcache_[message.id] = message;

  const auto it = topics_.find(message.topic);
  if (it != topics_.end() && it->second.subscribed && it->second.deliver) {
    ++delivered_;
    transport_.metrics().counter("pubsub.deliver").inc();
    it->second.deliver(message);
  }
  forward_to_mesh(message, from);
}

void Pubsub::forward_to_mesh(const PubsubMessage& message,
                             sim::NodeId arrived_from) {
  const auto it = topics_.find(message.topic);
  if (it == topics_.end()) return;
  for (const sim::NodeId peer : it->second.mesh) {
    if (peer == arrived_from || peer == message.id.origin) continue;
    auto rpc = std::make_shared<GossipRpc>();
    rpc->publish.push_back(message);
    transport_.metrics().counter("pubsub.forwarded").inc();
    send_rpc(peer, std::move(rpc));
  }
}

void Pubsub::heartbeat() {
  if (!transport_.online()) return;  // crashed: the restart re-arms us
  transport_.metrics().counter("pubsub.heartbeat").inc();
  const sim::Time now = transport_.now();
  for (auto& [topic, state] : topics_) {
    if (state.subscribed) {
      maintain_mesh(topic, state);
      emit_gossip(topic, state);
    } else if (!state.fanout.empty() && state.fanout_expires <= now) {
      state.fanout.clear();
    }
  }
  shift_mcache();
}

void Pubsub::maintain_mesh(const Topic& topic, TopicState& state) {
  // Connection teardown (resets, churn, remove_node) implies mesh drop.
  std::erase_if(state.mesh, [&](sim::NodeId peer) {
    if (transport_.connected(peer)) return false;
    transport_.metrics().instant("pubsub.mesh_drop", node_, topic, 0, peer);
    return true;
  });

  const auto degree = static_cast<std::size_t>(config_.degree);
  const auto degree_lo = static_cast<std::size_t>(config_.degree_lo);
  const auto degree_hi = static_cast<std::size_t>(config_.degree_hi);

  if (state.mesh.size() < degree_lo) {
    // GRAFT fresh peers up to the target degree D.
    std::vector<sim::NodeId> pool;
    for (const sim::NodeId peer : state.peers)
      if (std::find(state.mesh.begin(), state.mesh.end(), peer) ==
          state.mesh.end())
        pool.push_back(peer);
    for (const sim::NodeId peer :
         sample(std::move(pool), degree - state.mesh.size())) {
      ensure_connected(peer, [this, topic, peer](bool ok) {
        const auto it = topics_.find(topic);
        if (it == topics_.end() || !it->second.subscribed) return;
        TopicState& current = it->second;
        if (!ok) {
          // The peer is gone (crashed, churned out, removed): forget it
          // so mesh repair converges on live members.
          std::erase(current.peers, peer);
          std::erase(current.fanout, peer);
          return;
        }
        if (std::find(current.mesh.begin(), current.mesh.end(), peer) !=
            current.mesh.end())
          return;
        current.mesh.push_back(peer);
        transport_.metrics().counter("pubsub.graft_sent").inc();
        transport_.metrics().instant("pubsub.mesh_add", node_, topic, 0, peer);
        if (current.join_span != 0) {
          transport_.metrics().end_span(current.join_span, true);
          current.join_span = 0;
        }
        auto rpc = std::make_shared<GossipRpc>();
        rpc->graft.push_back({topic});
        // The graft doubles as a subscription announcement for peers
        // that learned about us only via px.
        rpc->subscriptions.push_back({topic, true});
        send_rpc(peer, std::move(rpc));
      });
    }
  } else if (state.mesh.size() > degree_hi) {
    // PRUNE down to D, handing each pruned peer a px sample to re-mesh.
    std::vector<sim::NodeId> victims =
        sample(state.mesh, state.mesh.size() - degree);
    for (const sim::NodeId victim : victims) {
      std::erase(state.mesh, victim);
      ControlPrune prune;
      prune.topic = topic;
      std::vector<sim::NodeId> px_pool;
      for (const sim::NodeId peer : state.peers)
        if (peer != victim) px_pool.push_back(peer);
      prune.px = sample(std::move(px_pool), config_.prune_px);
      transport_.metrics().counter("pubsub.prune_sent").inc();
      transport_.metrics().instant("pubsub.mesh_drop", node_, topic, 0, victim);
      auto rpc = std::make_shared<GossipRpc>();
      rpc->prune.push_back(std::move(prune));
      send_rpc(victim, std::move(rpc));
    }
  }
}

void Pubsub::emit_gossip(const Topic& topic, TopicState& state) {
  // Advertise ids from the most recent history_gossip windows to a
  // random sample of non-mesh topic peers.
  ControlIHave ihave;
  ihave.topic = topic;
  std::size_t windows = 0;
  for (const auto& window : mcache_windows_) {
    if (windows++ >= config_.history_gossip) break;
    for (const MessageId& id : window) {
      const auto it = mcache_.find(id);
      if (it != mcache_.end() && it->second.topic == topic)
        ihave.ids.push_back(id);
    }
  }
  if (ihave.ids.empty()) return;

  std::vector<sim::NodeId> pool;
  for (const sim::NodeId peer : state.peers)
    if (std::find(state.mesh.begin(), state.mesh.end(), peer) ==
        state.mesh.end())
      pool.push_back(peer);
  for (const sim::NodeId peer :
       sample(std::move(pool),
              static_cast<std::size_t>(config_.gossip_degree))) {
    auto rpc = std::make_shared<GossipRpc>();
    rpc->ihave.push_back(ihave);
    transport_.metrics().counter("pubsub.ihave_sent").inc();
    send_rpc(peer, std::move(rpc));
  }
}

void Pubsub::shift_mcache() {
  mcache_windows_.emplace_front();
  while (mcache_windows_.size() > config_.history_length) {
    for (const MessageId& id : mcache_windows_.back()) mcache_.erase(id);
    mcache_windows_.pop_back();
  }
}

void Pubsub::mark_seen(const MessageId& id) {
  if (!seen_set_.insert(id).second) return;
  seen_order_.push_back(id);
  while (seen_order_.size() > config_.seen_capacity) {
    seen_set_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
}

std::vector<sim::NodeId> Pubsub::sample(std::vector<sim::NodeId> pool,
                                        std::size_t want) {
  if (pool.size() <= want) return pool;
  // Partial Fisher-Yates on the engine's private stream.
  for (std::size_t i = 0; i < want; ++i) {
    const auto j = static_cast<std::size_t>(rng_.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(want);
  return pool;
}

void Pubsub::handle_crash() {
  // Everything is soft state: subscriptions, meshes, caches and the
  // candidate set die with the process.
  for (auto& [topic, state] : topics_)
    if (state.join_span != 0) transport_.metrics().end_span(state.join_span, false);
  topics_.clear();
  candidates_.clear();
  seen_set_.clear();
  seen_order_.clear();
  mcache_windows_.clear();
  mcache_windows_.emplace_back();
  mcache_.clear();
  iwant_pending_.clear();
  heartbeat_timer_.cancel();
}

void Pubsub::handle_restart() {
  heartbeat_timer_.cancel();
  arm_heartbeat();
}

std::vector<sim::NodeId> Pubsub::mesh_peers(const Topic& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? std::vector<sim::NodeId>{} : it->second.mesh;
}

std::vector<sim::NodeId> Pubsub::topic_peers(const Topic& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? std::vector<sim::NodeId>{} : it->second.peers;
}

}  // namespace ipfs::pubsub
