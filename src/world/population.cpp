#include "world/population.h"

#include <algorithm>
#include <cmath>

namespace ipfs::world {
namespace {

// Samples an index from `weights` (need not be normalized).
std::size_t weighted_pick(const std::vector<double>& weights, sim::Rng& rng) {
  double total = 0.0;
  for (const double w : weights) total += w;
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::string fresh_ip(std::uint32_t n) {
  // Avoid reserved-looking prefixes; uniqueness is what matters.
  return std::to_string(20 + (n >> 16) % 200) + "." +
         std::to_string((n >> 8) & 0xff) + "." + std::to_string(n & 0xff) +
         "." + std::to_string(1 + (n >> 24));
}

}  // namespace

Population generate_population(const PopulationConfig& config, sim::Rng rng) {
  Population out;
  out.peers.reserve(config.peer_count);

  const auto& country_list = countries();
  std::vector<double> country_weights;
  for (const auto& c : country_list) country_weights.push_back(c.peer_share);

  // Pre-compute per-country AS index lists and weights.
  const auto& as_list = autonomous_systems();
  std::vector<std::vector<std::size_t>> country_ases(country_list.size());
  std::vector<std::vector<double>> country_as_weights(country_list.size());
  for (std::size_t i = 0; i < as_list.size(); ++i) {
    country_ases[as_list[i].country].push_back(i);
    country_as_weights[as_list[i].country].push_back(as_list[i].weight);
  }

  const auto& clouds = cloud_providers();
  double cloud_total = 0.0;
  for (const auto& c : clouds) cloud_total += c.share_of_peers;

  // Shared-IP pool with a Zipf tail: a handful of "farm" IPs host many
  // PeerIDs (Figure 7c's top-10 IPs host tens of thousands).
  const std::size_t shared_pool_size =
      std::max<std::size_t>(8, config.peer_count / 10);
  std::vector<std::string> shared_pool;
  std::vector<int> shared_pool_country;

  std::uint32_t ip_counter = 0;

  for (std::size_t i = 0; i < config.peer_count; ++i) {
    PeerProfile peer;
    peer.country = static_cast<int>(weighted_pick(country_weights, rng));

    // Cloud assignment (Table 3): ~2.3 % of peers.
    if (rng.chance(cloud_total)) {
      std::vector<double> cloud_weights;
      for (const auto& c : clouds) cloud_weights.push_back(c.share_of_peers);
      peer.cloud_provider = static_cast<int>(weighted_pick(cloud_weights, rng));
      peer.stable = true;
      peer.dialable = true;
    } else {
      peer.dialable = !rng.chance(config.undialable_share);
    }

    // AS: Zipf-ish within the peer's country; the pinned Table 2 giants
    // carry most of the weight in CN/HK/BR/TW.
    peer.as_index = country_ases[peer.country][weighted_pick(
        country_as_weights[peer.country], rng)];

    // Transport mix. WebSocket servers are long-lived gateway/relay
    // style processes: always dialable (their flaky dials are what hang
    // for the full 45 s handshake timeout in Figure 9c).
    const double t = rng.uniform();
    if (t < config.websocket_share && peer.dialable) {
      // WebSocket servers are dialable but churn like everyone else;
      // dialing one that just went offline can hang for the full 45 s
      // handshake timeout — the paper's heavy publication tail.
      peer.transport = sim::Transport::kWebSocket;
    } else if (t < config.websocket_share + config.quic_share) {
      peer.transport = sim::Transport::kQuic;
    } else {
      peer.transport = sim::Transport::kTcp;
    }

    // IP assignment: mostly fresh, sometimes from the shared pool.
    std::string ip;
    int ip_country = peer.country;
    if (rng.chance(config.shared_ip_peer_share) && !shared_pool.empty()) {
      const auto rank = rng.zipf(shared_pool.size(), 1.2);
      ip = shared_pool[rank - 1];
      ip_country = shared_pool_country[rank - 1];
      peer.country = ip_country;  // co-located PeerIDs share the host
    } else {
      ip = fresh_ip(ip_counter++);
      if (shared_pool.size() < shared_pool_size && rng.chance(0.5)) {
        shared_pool.push_back(ip);
        shared_pool_country.push_back(ip_country);
      }
    }
    peer.ips.push_back(ip);
    peer.ip_countries.push_back(ip_country);
    out.geodb.add(ip, GeoDatabase::IpInfo{ip_country, peer.as_index,
                                          peer.cloud_provider});

    // Multihoming: a second address in a different country.
    if (rng.chance(config.multihoming_share)) {
      int other_country = static_cast<int>(weighted_pick(country_weights, rng));
      if (other_country == peer.country)
        other_country =
            (peer.country + 1) % static_cast<int>(country_list.size());
      const std::string second_ip = fresh_ip(ip_counter++);
      peer.ips.push_back(second_ip);
      peer.ip_countries.push_back(other_country);
      const std::size_t second_as = country_ases[other_country][weighted_pick(
          country_as_weights[other_country], rng)];
      out.geodb.add(second_ip, GeoDatabase::IpInfo{other_country, second_as,
                                                   peer.cloud_provider});
    }

    // Churn profile (Figure 8): log-normal sessions with a per-country
    // median; cloud peers are near-permanent.
    if (peer.stable) {
      peer.session_median_minutes = 7.0 * 24 * 60;  // a week
      peer.offline_median_minutes = 30.0;
    } else {
      peer.session_median_minutes =
          country_list[peer.country].uptime_median_minutes;
      const double f = config.online_fraction;
      peer.offline_median_minutes =
          peer.session_median_minutes * (1.0 - f) / f;
    }

    out.peers.push_back(std::move(peer));
  }

  return out;
}

}  // namespace ipfs::world
