#include "world/world.h"

#include <algorithm>
#include <thread>

#include "bitswap/bitswap.h"
#include "crypto/sha256.h"

namespace ipfs::world {

multiformats::PeerId synthetic_peer_id(std::uint64_t n) {
  std::uint8_t seed[9];
  for (int i = 0; i < 8; ++i) seed[i] = static_cast<std::uint8_t>(n >> (8 * i));
  seed[8] = 0x77;  // domain separation from other hash uses
  const auto digest = crypto::sha256(std::span<const std::uint8_t>(seed, 9));
  crypto::Ed25519PublicKey key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return multiformats::PeerId::from_public_key(key);
}

World::World(const WorldConfig& config)
    : config_(config),
      simulator_(config.scheduler),
      latency_(default_latency_model()),
      population_(generate_population(config.population,
                                      sim::Rng(config.seed).fork("population"))),
      rng_(sim::Rng(config.seed).fork("world")) {
  network_ = std::make_unique<sim::Network>(simulator_, latency_, config.seed);
  network_->enable_sharding(config.shards);
  churn_ = std::make_unique<sim::ChurnProcess>(simulator_, *network_,
                                               config.seed);
  // Designate the first bootstrap_count peers as the canonical bootstrap
  // nodes: stable, dialable, well provisioned, spread across regions.
  const int bootstrap_regions[] = {kUsEast, kEuCentral, kUsWest,
                                   kAsiaEast, kEuCentral, kUsEast};
  for (std::size_t i = 0;
       i < std::min(config_.bootstrap_count, population_.peers.size()); ++i) {
    PeerProfile& peer = population_.peers[i];
    peer.dialable = true;
    peer.stable = true;
    peer.transport = sim::Transport::kTcp;
    peer.country = country_index(i % 2 == 0 ? "US" : "DE");
    (void)bootstrap_regions;
  }

  build_nodes();
  build_hydras();
  build_indexers();
  seed_routing_tables();
  if (config_.enable_churn) start_churn();
}

void World::build_nodes() {
  const auto& country_list = countries();
  dht_nodes_.reserve(population_.peers.size());
  for (std::size_t i = 0; i < population_.peers.size(); ++i) {
    const PeerProfile& peer = population_.peers[i];
    sim::NodeConfig config;
    config.region = country_list[peer.country].region;
    config.dialable = peer.dialable;
    config.transport = peer.transport;
    config.dial_success_prob =
        peer.stable ? 1.0 : config_.population.dial_success_prob;
    if (!peer.dialable && config_.dcutr_share > 0.0 &&
        rng_.chance(config_.dcutr_share)) {
      // NAT'ed peer reachable through a relay (DCUtR extension).
      config.relay = static_cast<sim::NodeId>(i % config_.bootstrap_count);
    }
    if (peer.stable) {
      config.upload_bytes_per_sec = 40.0 * 1024 * 1024;
      config.download_bytes_per_sec = 40.0 * 1024 * 1024;
    } else {
      config.upload_bytes_per_sec = rng_.uniform(1.0, 6.0) * 1024 * 1024;
      config.download_bytes_per_sec = rng_.uniform(4.0, 16.0) * 1024 * 1024;
    }

    const sim::NodeId node = network_->add_node(config);
    std::vector<multiformats::Multiaddr> addresses;
    for (const auto& ip : peer.ips)
      addresses.push_back(multiformats::make_tcp_multiaddr(ip, 4001));

    auto dht = std::make_unique<dht::DhtNode>(*network_, node,
                                              synthetic_peer_id(i),
                                              std::move(addresses));
    dht->force_mode(dht::DhtNode::Mode::kServer);
    dht->attach_to_network();

    // World peers also speak Bitswap: they hold no third-party content,
    // so every probe gets a prompt DONT_HAVE (real peers answer rather
    // than time out).
    dht::DhtNode* dht_raw = dht.get();
    network_->set_request_handler(
        node, [this, dht_raw](sim::NodeId from, const sim::MessagePtr& message,
                              auto respond) {
          if (dht_raw->handle_request(from, message, respond)) return;
          if (message->kind() == sim::MessageKind::kWantHaveRequest) {
            auto response = std::make_shared<bitswap::HaveResponse>();
            response->have = false;
            respond(std::move(response), 40);
          } else if (message->kind() == sim::MessageKind::kWantBlockRequest) {
            const auto* want =
                static_cast<const bitswap::WantBlockRequest*>(message.get());
            auto response = std::make_shared<bitswap::BlockResponse>();
            response->cid = want->cid;
            response->dont_have = want->send_dont_have;
            respond(std::move(response), 64);
          }
        });
    dht_nodes_.push_back(std::move(dht));
  }
}

void World::build_hydras() {
  // Hydra boosters: each machine runs many always-on DHT server heads
  // whose PeerIDs scatter across the key space, all answering from one
  // shared record store. A record stored with any head becomes
  // retrievable through every head.
  for (std::size_t h = 0; h < config_.hydra_count; ++h) {
    hydra_stores_.push_back(std::make_unique<dht::RecordStore>());
    dht::RecordStore* shared = hydra_stores_.back().get();
    for (std::size_t head = 0; head < config_.hydra_heads; ++head) {
      sim::NodeConfig config;
      config.region = static_cast<int>(h % kRegionCount);
      config.dialable = true;
      config.upload_bytes_per_sec = 100.0 * 1024 * 1024;
      config.download_bytes_per_sec = 100.0 * 1024 * 1024;
      const sim::NodeId node = network_->add_node(config);
      const std::uint64_t identity =
          0x48595200000000ULL + h * 4096 + head;  // 'HYR' prefix
      auto dht = std::make_unique<dht::DhtNode>(
          *network_, node, synthetic_peer_id(identity),
          std::vector<multiformats::Multiaddr>{
              multiformats::make_tcp_multiaddr("44.0.0.1", 4001)},
          shared);
      dht->force_mode(dht::DhtNode::Mode::kServer);
      dht->attach_to_network();
      dht_nodes_.push_back(std::move(dht));
    }
  }
}

void World::build_indexers() {
  // Network indexers: stable infrastructure appended after the
  // population (and hydras), so they are exempt from churn and their
  // presence never shifts the population's node ids or rng draws. Placed
  // round-robin across regions like hydras.
  for (std::size_t i = 0; i < config_.indexer_count; ++i) {
    indexer::IndexerConfig config = config_.indexer;
    config.net.region = static_cast<int>(i % kRegionCount);
    config.net.dialable = true;
    indexers_.push_back(std::make_unique<indexer::Indexer>(*network_, config));
  }
}

routing::RoutingConfig World::routing_config(
    routing::RoutingConfig::Mode mode) const {
  routing::RoutingConfig config;
  config.mode = mode;
  for (const auto& ix : indexers_) config.indexers.push_back(ix->node());
  return config;
}

void World::seed_routing_tables() {
  // Pre-converge the swarm: fill each peer's k-buckets with structurally
  // correct entries (peers at common-prefix-length b land in bucket b),
  // as a long-running network's tables would look. Offline and NAT'ed
  // peers are seeded too — the table staleness real lookups contend with.
  struct Keyed {
    std::array<std::uint8_t, 32> key;
    std::uint32_t index;
  };
  std::vector<Keyed> sorted;
  sorted.reserve(dht_nodes_.size());
  for (std::size_t i = 0; i < dht_nodes_.size(); ++i) {
    sorted.push_back(
        {dht::Key::for_peer(dht_nodes_[i]->self().id).bytes(),
         static_cast<std::uint32_t>(i)});
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Keyed& a, const Keyed& b) { return a.key < b.key; });

  auto prefix_range = [&](const std::array<std::uint8_t, 32>& key, int bits) {
    // [lo, hi) of sorted entries sharing the first `bits` bits of key.
    std::array<std::uint8_t, 32> lo = key;
    std::array<std::uint8_t, 32> hi = key;
    for (int byte = 0; byte < 32; ++byte) {
      const int bit_start = byte * 8;
      for (int bit = 0; bit < 8; ++bit) {
        if (bit_start + bit >= bits) {
          lo[byte] &= static_cast<std::uint8_t>(0xff << (8 - bit));
          hi[byte] |= static_cast<std::uint8_t>(0xff >> bit);
          // Remaining bytes.
          for (int rest = byte + 1; rest < 32; ++rest) {
            lo[rest] = 0x00;
            hi[rest] = 0xff;
          }
          byte = 32;  // break outer
          break;
        }
      }
    }
    const auto lo_it = std::lower_bound(
        sorted.begin(), sorted.end(), lo,
        [](const Keyed& a, const std::array<std::uint8_t, 32>& b) {
          return a.key < b;
        });
    const auto hi_it = std::upper_bound(
        sorted.begin(), sorted.end(), hi,
        [](const std::array<std::uint8_t, 32>& a, const Keyed& b) {
          return a < b.key;
        });
    return std::pair<std::size_t, std::size_t>(lo_it - sorted.begin(),
                                               hi_it - sorted.begin());
  };

  // Planning (bucket allocation and every rng draw) stays sequential in
  // node order, so the seeded draw stream — and with it every seeded
  // world — is bit-identical to the single-threaded seeder. The
  // expensive part, copying PeerRefs into k-bucket entries, touches only
  // the owning node's table, so blocks of finished plans fan out across
  // worker threads; the result is independent of the worker count.
  const std::size_t node_total = dht_nodes_.size();
  const std::size_t workers = std::max<std::size_t>(
      1, std::min<std::size_t>(std::thread::hardware_concurrency(),
                               node_total / 1024));
  constexpr std::size_t kPlanBlock = 8192;
  std::vector<std::vector<std::uint32_t>> plans(
      std::min(kPlanBlock, node_total));

  const auto plan_node = [&](std::size_t i,
                             std::vector<std::uint32_t>& plan) {
    plan.clear();
    const auto key = dht::Key::for_peer(dht_nodes_[i]->self().id).bytes();
    const std::size_t budget = config_.max_routing_entries;

    auto [lo_prev, hi_prev] = prefix_range(key, 0);
    std::vector<std::pair<std::size_t, std::size_t>> levels;
    levels.push_back({lo_prev, hi_prev});
    for (int bits = 1; bits <= 256; ++bits) {
      const auto range = prefix_range(key, bits);
      levels.push_back(range);
      if (range.second - range.first <= 1) break;
    }

    // Per-bucket candidate counts, deepest bucket first (the draw order
    // below). Bucket (depth-1) holds entries sharing depth-1 bits but
    // differing at bit depth-1: levels[depth-1] minus levels[depth].
    struct BucketRange {
      std::size_t outer_lo, outer_hi, inner_lo, inner_hi, total;
    };
    std::vector<BucketRange> buckets;
    buckets.reserve(levels.size());
    for (std::size_t depth = levels.size(); depth-- > 1;) {
      const auto [outer_lo, outer_hi] = levels[depth - 1];
      const auto [inner_lo, inner_hi] = levels[depth];
      buckets.push_back({outer_lo, outer_hi, inner_lo, inner_hi,
                         (outer_hi - outer_lo) - (inner_hi - inner_lo)});
    }

    // Split the entry budget across buckets. Unbounded, every bucket
    // gets its full k = 20. When the budget binds (large worlds with a
    // capped max_routing_entries), a deepest-first greedy would spend
    // everything inside the node's own aligned prefix block — every
    // entry then points at a near neighbour, no table links distant
    // subtrees, and a crawl BFS shatters into ~n/2^b islands. So first
    // reserve a couple of long-range entries in every occupied bucket,
    // then pour the remainder into the deepest buckets (closest
    // neighbours matter most for closest-peer correctness).
    constexpr std::size_t kLongRangeReserve = 2;
    std::vector<std::size_t> alloc(buckets.size(), 0);
    std::size_t want = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      alloc[b] = std::min(buckets[b].total, dht::kBucketSize);
      want += alloc[b];
    }
    if (want > budget) {
      std::vector<std::size_t> reserve(buckets.size(), 0);
      std::size_t reserved = 0;
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        reserve[b] = std::min(alloc[b], kLongRangeReserve);
        reserved += reserve[b];
      }
      if (reserved >= budget) {
        // Tiny budget: one entry per bucket, shallowest (longest-range)
        // first, round-robin until the budget is gone.
        std::fill(alloc.begin(), alloc.end(), 0);
        std::size_t left = budget;
        for (std::size_t round = 0; left > 0; ++round) {
          bool granted = false;
          for (std::size_t b = buckets.size(); b-- > 0 && left > 0;) {
            if (alloc[b] < reserve[b]) {
              ++alloc[b];
              --left;
              granted = true;
            }
          }
          if (!granted) break;
        }
      } else {
        std::size_t left = budget - reserved;
        for (std::size_t b = 0; b < buckets.size(); ++b) {
          const std::size_t extra = std::min(alloc[b] - reserve[b], left);
          alloc[b] = reserve[b] + extra;
          left -= extra;
        }
      }
    }

    for (std::size_t b = 0; b < buckets.size(); ++b) {
      // The candidate set is [outer_lo, outer_hi) minus [inner_lo,
      // inner_hi): two contiguous runs of the sorted array, addressable
      // by arithmetic. Materializing it would cost O(n) per node (the
      // bucket-0 set is half the network), turning world construction
      // quadratic; at 100k peers that is the difference between
      // milliseconds and minutes.
      const auto [outer_lo, outer_hi, inner_lo, inner_hi, total] = buckets[b];
      if (total == 0) continue;
      const std::size_t left_len = inner_lo - outer_lo;
      const auto candidate_at = [&](std::size_t t) {
        return t < left_len ? outer_lo + t : inner_hi + (t - left_len);
      };
      const std::size_t take = alloc[b];
      if (take == 0) continue;
      // Uniform sample without replacement: the same partial
      // Fisher-Yates the dense version ran, with the handful of
      // displaced positions tracked in a sparse overlay so the draw
      // sequence (and therefore every seeded world) is unchanged.
      std::vector<std::pair<std::size_t, std::size_t>> moved;  // pos -> t
      const auto value_at = [&](std::size_t pos) {
        for (const auto& [p, t] : moved)
          if (p == pos) return t;
        return candidate_at(pos);
      };
      const auto set_at = [&](std::size_t pos, std::size_t t) {
        for (auto& [p, existing] : moved) {
          if (p == pos) {
            existing = t;
            return;
          }
        }
        moved.emplace_back(pos, t);
      };
      for (std::size_t pick = 0; pick < take; ++pick) {
        const std::size_t swap_with = pick + static_cast<std::size_t>(
            rng_.uniform_int(0,
                             static_cast<std::int64_t>(total - pick) - 1));
        const std::size_t chosen = value_at(swap_with);
        set_at(swap_with, value_at(pick));
        plan.push_back(static_cast<std::uint32_t>(chosen));
      }
    }
  };

  const auto seed_node = [&](std::size_t i,
                             const std::vector<std::uint32_t>& plan) {
    auto& table = dht_nodes_[i]->routing_table();
    for (const std::uint32_t chosen : plan) {
      const Keyed& keyed = sorted[chosen];
      table.upsert(dht_nodes_[keyed.index]->self(), dht::Key(keyed.key));
    }
  };

  for (std::size_t block = 0; block < node_total; block += kPlanBlock) {
    const std::size_t block_end = std::min(node_total, block + kPlanBlock);
    for (std::size_t i = block; i < block_end; ++i)
      plan_node(i, plans[i - block]);
    if (workers <= 1) {
      for (std::size_t i = block; i < block_end; ++i)
        seed_node(i, plans[i - block]);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          for (std::size_t i = block + w; i < block_end; i += workers)
            seed_node(i, plans[i - block]);
        });
      }
      for (auto& thread : pool) thread.join();
    }
  }
}

void World::start_churn() {
  const double sigma = config_.population.session_sigma;
  for (std::size_t i = 0; i < population_.peers.size(); ++i) {
    const PeerProfile& peer = population_.peers[i];
    if (peer.stable) continue;       // bootstrap/cloud peers stay up
    if (!peer.dialable) continue;    // permanently unreachable either way
    const double session_median = peer.session_median_minutes;
    const double offline_median = peer.offline_median_minutes;
    churn_->manage(
        dht_nodes_[i]->node(),
        [session_median, sigma](sim::Rng& rng) {
          return sim::minutes(rng.lognormal_median(session_median, sigma));
        },
        [offline_median, sigma](sim::Rng& rng) {
          return sim::minutes(
              rng.lognormal_median(offline_median, sigma * 0.7));
        });
  }
}

std::vector<dht::PeerRef> World::bootstrap_refs() const {
  std::vector<dht::PeerRef> out;
  for (std::size_t i = 0;
       i < std::min(config_.bootstrap_count, dht_nodes_.size()); ++i)
    out.push_back(dht_nodes_[i]->self());
  return out;
}

double World::online_fraction() const {
  std::size_t online = 0;
  for (const auto& node : dht_nodes_)
    if (network_->online(node->node())) ++online;
  return static_cast<double>(online) / static_cast<double>(dht_nodes_.size());
}

}  // namespace ipfs::world
