// The synthetic "world" the simulated IPFS network lives in: latency
// regions, countries with the paper's peer shares (Figure 5) and churn
// profiles (Figure 8), autonomous systems (Table 2 / Figure 7d) and cloud
// providers (Table 3).
//
// These marginals are inputs taken from the paper's published aggregates;
// the measurement tooling (crawler, uptime prober, aggregators) must
// *recover* them from DHT observations — that round trip is what the
// deployment-scale benches validate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/network.h"

namespace ipfs::world {

// Latency regions, including the paper's six AWS measurement regions.
enum Region : int {
  kUsEast = 0,
  kUsWest = 1,       // us_west_1 (N. California)
  kEuCentral = 2,    // eu_central_1 (Frankfurt)
  kAsiaEast = 3,     // China/Taiwan/Korea/Japan/HK
  kApSoutheast = 4,  // ap_southeast_2 (Sydney)
  kSaEast = 5,       // sa_east_1 (São Paulo)
  kAfSouth = 6,      // af_south_1 (Cape Town)
  kMeSouth = 7,      // me_south_1 (Bahrain)
  kRegionCount = 8,
};

std::string_view region_name(int region);

// One-way inter-region latency matrix (milliseconds).
sim::LatencyModel default_latency_model();

struct CountrySpec {
  std::string_view code;         // ISO-ish label used in figures
  double peer_share;             // fraction of peers (Figure 5)
  int region;                    // latency region
  double uptime_median_minutes;  // session median (Figure 8)
  double gateway_user_share;     // fraction of gateway users (Figure 6)
};

// Country table calibrated to Figures 5, 6 and 8. Shares sum to 1.
const std::vector<CountrySpec>& countries();

int country_index(std::string_view code);

struct AsSpec {
  std::uint32_t asn;
  std::string name;
  int country;      // index into countries()
  double weight;    // relative IP mass within its country
  int caida_rank;   // synthetic CAIDA-like rank
};

// AS catalog: the paper's Table 2 heavy hitters pinned explicitly, plus a
// power-law tail per country (2715 ASes total, Section 5.2).
const std::vector<AsSpec>& autonomous_systems();

// Indices of the ASes of `country`, heaviest first.
std::vector<std::size_t> ases_of_country(int country);

struct CloudSpec {
  std::string name;
  double share_of_peers;  // fraction of ALL peers hosted here (Table 3)
};

// Cloud provider catalog (Table 3): ~2.3 % of peers total.
const std::vector<CloudSpec>& cloud_providers();

}  // namespace ipfs::world
