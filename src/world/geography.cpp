#include "world/geography.h"

#include <cmath>

namespace ipfs::world {

std::string_view region_name(int region) {
  switch (region) {
    case kUsEast:
      return "us_east";
    case kUsWest:
      return "us_west_1";
    case kEuCentral:
      return "eu_central_1";
    case kAsiaEast:
      return "asia_east";
    case kApSoutheast:
      return "ap_southeast_2";
    case kSaEast:
      return "sa_east_1";
    case kAfSouth:
      return "af_south_1";
    case kMeSouth:
      return "me_south_1";
  }
  return "unknown";
}

sim::LatencyModel default_latency_model() {
  // One-way latencies in ms, symmetric, loosely based on public
  // inter-region RTT measurements (half-RTT plus last-mile access delay).
  //           us_e us_w  eu  as_e ap_se sa_e af_s me_s
  const std::vector<std::vector<double>> ms = {
      {12, 35, 45, 90, 100, 60, 120, 95},    // us_east
      {35, 12, 70, 60, 75, 90, 140, 110},    // us_west
      {45, 70, 12, 110, 140, 100, 80, 55},   // eu_central
      {90, 60, 110, 15, 55, 150, 150, 90},   // asia_east
      {100, 75, 140, 55, 12, 160, 135, 85},  // ap_southeast
      {60, 90, 100, 150, 160, 12, 170, 140}, // sa_east
      {120, 140, 80, 150, 135, 170, 15, 105},// af_south
      {95, 110, 55, 90, 85, 140, 105, 12},   // me_south
  };
  return sim::LatencyModel(ms, 0.9, 1.35);
}

const std::vector<CountrySpec>& countries() {
  // peer_share: Figure 5; uptime medians: Figure 8 (HK 24.2 min, DE about
  // double that); gateway_user_share: Figure 6 (US 50.4 %, CN 31.9 %,
  // HK 6.6 %, CA 4.6 %, JP 1.7 %).
  static const std::vector<CountrySpec> kCountries = {
      {"US", 0.285, kUsEast, 45.0, 0.504},
      {"CN", 0.242, kAsiaEast, 30.0, 0.319},
      {"FR", 0.083, kEuCentral, 42.0, 0.004},
      {"TW", 0.072, kAsiaEast, 33.0, 0.003},
      {"KR", 0.067, kAsiaEast, 38.0, 0.004},
      {"HK", 0.045, kAsiaEast, 24.2, 0.066},
      {"BR", 0.040, kSaEast, 34.0, 0.002},
      {"DE", 0.035, kEuCentral, 48.4, 0.006},
      {"JP", 0.020, kAsiaEast, 40.0, 0.017},
      {"GB", 0.020, kEuCentral, 44.0, 0.005},
      {"CA", 0.015, kUsEast, 47.0, 0.046},
      {"RU", 0.015, kEuCentral, 33.0, 0.002},
      {"NL", 0.013, kEuCentral, 50.0, 0.003},
      {"AU", 0.010, kApSoutheast, 43.0, 0.002},
      {"PL", 0.008, kEuCentral, 40.0, 0.001},
      {"ZA", 0.008, kAfSouth, 34.0, 0.001},
      {"SG", 0.007, kApSoutheast, 44.0, 0.002},
      {"IN", 0.007, kMeSouth, 30.0, 0.002},
      {"AE", 0.005, kMeSouth, 36.0, 0.001},
      // The remaining ~130 countries of Section 5.1, folded into one
      // bucket so shares sum to exactly 1.
      {"OTHER", 0.003, kEuCentral, 36.0, 0.014},
  };
  return kCountries;
}

int country_index(std::string_view code) {
  const auto& list = countries();
  for (std::size_t i = 0; i < list.size(); ++i)
    if (list[i].code == code) return static_cast<int>(i);
  return -1;
}

const std::vector<AsSpec>& autonomous_systems() {
  static const std::vector<AsSpec> kAses = [] {
    std::vector<AsSpec> ases;
    // Table 2: the five ASes holding >50 % of all observed IP addresses.
    ases.push_back({4134, "CHINANET-BACKBONE", country_index("CN"), 50.0, 76});
    ases.push_back({4837, "CHINA169-BACKBONE", country_index("CN"), 34.0, 160});
    ases.push_back({4760, "HKTIMS-AP HKT Limited", country_index("HK"), 40.0,
                    2976});
    ases.push_back({26599, "TELEFONICA BRASIL", country_index("BR"), 30.0,
                    6797});
    ases.push_back({3462, "HINET Data Communication", country_index("TW"), 24.0,
                    340});

    // Power-law tail: enough ASes per country that the census finds
    // ~2715 in total, with Zipf-ish weights inside each country.
    const auto& country_list = countries();
    std::uint32_t next_asn = 10000;
    int next_rank = 10;
    for (std::size_t c = 0; c < country_list.size(); ++c) {
      const int as_count = std::max(
          4, static_cast<int>(country_list[c].peer_share * 900));
      for (int i = 0; i < as_count; ++i) {
        AsSpec spec;
        spec.asn = next_asn++;
        spec.name = std::string(country_list[c].code) + "-AS" +
                    std::to_string(i + 1);
        spec.country = static_cast<int>(c);
        // Zipf weight within the country; scaled well below the pinned
        // heavy hitters.
        spec.weight = 3.0 / std::pow(i + 2.0, 1.6);
        spec.caida_rank = next_rank;
        next_rank += 7;
        ases.push_back(std::move(spec));
      }
    }
    return ases;
  }();
  return kAses;
}

std::vector<std::size_t> ases_of_country(int country) {
  std::vector<std::size_t> out;
  const auto& all = autonomous_systems();
  for (std::size_t i = 0; i < all.size(); ++i)
    if (all[i].country == country) out.push_back(i);
  return out;
}

const std::vector<CloudSpec>& cloud_providers() {
  // Table 3, converted from IP-address counts to peer shares; total cloud
  // share is about 2.3 % of all peers.
  static const std::vector<CloudSpec> kClouds = {
      {"Contabo GmbH", 0.0044},
      {"Amazon AWS", 0.0039},
      {"Microsoft Azure", 0.0033},
      {"Digital Ocean", 0.0018},
      {"Hetzner Online", 0.0013},
      {"GZ Systems", 0.0008},
      {"OVH", 0.0007},
      {"Google Cloud", 0.0006},
      {"Tencent Cloud", 0.0006},
      {"Choopa, LLC. Cloud", 0.0005},
      {"Other Clouds", 0.0050},
  };
  return kClouds;
}

}  // namespace ipfs::world
