// Synthetic peer population generator: draws per-peer attributes
// (country, AS, cloud, IPs, dialability, churn profile, transport) from
// the paper's published marginal distributions.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/network.h"
#include "sim/rng.h"
#include "world/geography.h"

namespace ipfs::world {

struct PopulationConfig {
  std::size_t peer_count = 2000;
  // Share of crawlable peers that are never dialable (NAT'ed or
  // firewalled peers stuck in others' routing tables; Section 5.1 finds
  // 45.5 % of IPs never reachable, about 1/3 of peers never accessible).
  double undialable_share = 0.30;
  // Dial success to online, dialable peers (flaky reachability).
  double dial_success_prob = 0.96;
  double websocket_share = 0.05;
  double quic_share = 0.15;
  // 8.8 % of peers advertise addresses in multiple countries (Figure 5).
  double multihoming_share = 0.088;
  // Peers that land on an already-used IP (Figure 7c: 7.7 % of IPs host
  // more than one PeerID, with a heavy farm tail).
  double shared_ip_peer_share = 0.25;
  // Steady-state online fraction for churning peers.
  double online_fraction = 0.75;
  double session_sigma = 1.4;  // log-space spread of session lengths
};

struct PeerProfile {
  int country = 0;
  std::size_t as_index = 0;       // into autonomous_systems()
  int cloud_provider = -1;        // into cloud_providers(), -1 = none
  std::vector<std::string> ips;   // one, or two when multihomed
  std::vector<int> ip_countries;  // country of each IP
  bool dialable = true;
  bool stable = false;            // cloud-grade uptime (reliable peers)
  sim::Transport transport = sim::Transport::kTcp;
  double session_median_minutes = 40.0;
  double offline_median_minutes = 13.0;
};

// The world's "GeoLite2/CAIDA/Udger" stand-in: resolves an IP address to
// country / AS / cloud provider. The measurement tooling consults this
// the same way the paper consults the real databases.
class GeoDatabase {
 public:
  struct IpInfo {
    int country = -1;
    std::size_t as_index = 0;
    int cloud_provider = -1;
  };

  void add(const std::string& ip, IpInfo info) { ips_[ip] = info; }
  const IpInfo* lookup(const std::string& ip) const {
    const auto it = ips_.find(ip);
    return it == ips_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return ips_.size(); }

 private:
  std::unordered_map<std::string, IpInfo> ips_;
};

struct Population {
  std::vector<PeerProfile> peers;
  GeoDatabase geodb;
};

Population generate_population(const PopulationConfig& config, sim::Rng rng);

}  // namespace ipfs::world
