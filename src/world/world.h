// The assembled world: a simulated IPFS swarm with realistic geography,
// churn, NAT'ed peers and pre-converged Kademlia routing tables. This is
// the stand-in for the live public network the paper measures.
#pragma once

#include <memory>
#include <vector>

#include "dht/dht_node.h"
#include "indexer/indexer.h"
#include "routing/router.h"
#include "sim/churn.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "world/population.h"

namespace ipfs::world {

struct WorldConfig {
  PopulationConfig population;
  std::uint64_t seed = 42;
  // Event scheduler for the world's simulator; the legacy binary heap is
  // kept selectable for determinism cross-checks.
  sim::SchedulerBackend scheduler = sim::SchedulerBackend::kTimerWheel;
  // Sharded parallel event core (src/sim/parallel): 0 keeps the
  // sequential Simulator, N >= 1 partitions the world into N per-shard
  // event queues with latency-floor lookahead windows. Execution order
  // is shard-count invariant (docs/SCALING.md, "Sharded core").
  std::size_t shards = 0;
  bool enable_churn = true;
  std::size_t bootstrap_count = 6;  // the canonical bootstrap peers
  // Memory cap on pre-seeded routing entries per peer.
  std::size_t max_routing_entries = 192;
  // Share of NAT'ed peers that run the DCUtR relay/hole-punching upgrade
  // (the paper's Section 3.1 notes it as under test; 0 reproduces the
  // paper's world). Relays are the bootstrap peers.
  double dcutr_share = 0.0;
  // Hydra boosters (the paper's Section 8 future work): stable,
  // well-provisioned machines each running `hydra_heads` DHT server
  // identities over one shared record store. 0 reproduces the paper's
  // measured world.
  std::size_t hydra_count = 0;
  std::size_t hydra_heads = 10;
  // Network indexers (delegated content routing, docs/ROUTING.md):
  // stable, well-provisioned nodes placed round-robin across regions,
  // exempt from churn. 0 reproduces the paper's measured world.
  std::size_t indexer_count = 0;
  indexer::IndexerConfig indexer;
};

// Deterministic PeerID for bulk simulation peers: identity-multihash
// framing identical to Ed25519 PeerIDs, derived by hashing the index
// (real key derivation would dominate world construction time).
multiformats::PeerId synthetic_peer_id(std::uint64_t n);

class World {
 public:
  explicit World(const WorldConfig& config);

  sim::Simulator& simulator() { return simulator_; }
  sim::Network& network() { return *network_; }
  sim::ChurnProcess& churn() { return *churn_; }

  // Scheduler-agnostic drivers: route through whichever event core the
  // config selected (sequential Simulator or the sharded engine).
  sim::Time now() const { return network_->now(); }
  std::uint64_t run() { return network_->run(); }
  std::uint64_t run_until(sim::Time deadline) {
    return network_->run_until(deadline);
  }

  std::size_t size() const { return dht_nodes_.size(); }
  dht::DhtNode& dht(std::size_t i) { return *dht_nodes_[i]; }
  const PeerProfile& profile(std::size_t i) const {
    return population_.peers[i];
  }
  const GeoDatabase& geodb() const { return population_.geodb; }
  dht::PeerRef ref(std::size_t i) const { return dht_nodes_[i]->self(); }

  // The six well-known bootstrap peers (Section 2.2): stable, dialable,
  // exempt from churn.
  std::vector<dht::PeerRef> bootstrap_refs() const;

  const WorldConfig& config() const { return config_; }
  const sim::LatencyModel& latency_model() const { return latency_; }

  // Fraction of world peers currently online (diagnostics).
  double online_fraction() const;

  // Peers added by the hydra extension (appended after the regular
  // population; profile() is not valid for them).
  std::size_t regular_peer_count() const { return population_.peers.size(); }

  // --- Network indexers (delegated routing) -------------------------------

  std::size_t indexer_count() const { return indexers_.size(); }
  indexer::Indexer& indexer(std::size_t i) { return *indexers_[i]; }

  // Routing config for a measurement node wanting `mode` against this
  // world's indexers (their NodeIds in construction order).
  routing::RoutingConfig routing_config(routing::RoutingConfig::Mode mode) const;

 private:
  void build_nodes();
  void build_hydras();
  void build_indexers();
  void seed_routing_tables();
  void start_churn();

  WorldConfig config_;
  sim::Simulator simulator_;
  sim::LatencyModel latency_;
  std::unique_ptr<sim::Network> network_;
  Population population_;
  std::vector<std::unique_ptr<dht::DhtNode>> dht_nodes_;
  std::vector<std::unique_ptr<dht::RecordStore>> hydra_stores_;
  std::vector<std::unique_ptr<indexer::Indexer>> indexers_;
  std::unique_ptr<sim::ChurnProcess> churn_;
  sim::Rng rng_;
};

}  // namespace ipfs::world
