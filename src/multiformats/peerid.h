// PeerIDs (paper Section 2.2): the multihash of a peer's public key.
// Ed25519 keys are small, so libp2p inlines them with the identity
// multihash — producing the familiar "12D3KooW..." base58 form.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "crypto/ed25519.h"
#include "multiformats/multihash.h"

namespace ipfs::multiformats {

class PeerId {
 public:
  PeerId() = default;
  explicit PeerId(Multihash hash) : hash_(std::move(hash)) {}

  // Derives the PeerID from an Ed25519 public key via the libp2p
  // PublicKey protobuf framing (key_type=Ed25519, data=key).
  static PeerId from_public_key(const crypto::Ed25519PublicKey& key);

  // Parses the base58btc textual form.
  static std::optional<PeerId> parse(std::string_view text);

  std::vector<std::uint8_t> encode() const { return hash_.encode(); }
  std::string to_base58() const;

  const Multihash& hash() const { return hash_; }

  // The Ed25519 public key, recoverable when the PeerID uses the identity
  // multihash (as all simulator peers do).
  std::optional<crypto::Ed25519PublicKey> public_key() const;

  bool empty() const { return hash_.digest().empty(); }

  bool operator==(const PeerId&) const = default;
  auto operator<=>(const PeerId&) const = default;

 private:
  Multihash hash_;
};

}  // namespace ipfs::multiformats
