// Multihash: self-describing hash digests — <fn-code varint><length
// varint><digest>. The paper's Figure 1 shows a Multihash embedded in a CID.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "multiformats/multicodec.h"

namespace ipfs::multiformats {

// The digest is held behind a shared immutable buffer: PeerIDs (which wrap
// a Multihash) are copied tens of millions of times in a large-world
// census (routing-table entries, DHT messages, crawl observations), and a
// copy must be a refcount bump, not a heap allocation.
class Multihash {
 public:
  Multihash() = default;
  Multihash(Multicodec code, std::vector<std::uint8_t> digest);

  // Hashes data with sha2-256 (the IPFS default).
  static Multihash sha2_256(std::span<const std::uint8_t> data);

  // Wraps data verbatim (identity hash, used for small inline keys such as
  // Ed25519 public keys in libp2p PeerIDs).
  static Multihash identity(std::span<const std::uint8_t> data);

  // Parses the binary form. Returns nullopt on truncation or length
  // mismatch; `consumed` reports how many bytes the multihash occupied.
  static std::optional<Multihash> decode(std::span<const std::uint8_t> data,
                                         std::size_t* consumed = nullptr);

  std::vector<std::uint8_t> encode() const;

  Multicodec code() const { return code_; }
  const std::vector<std::uint8_t>& digest() const {
    return digest_ ? *digest_ : empty_digest();
  }

  // True if this multihash matches `data` (re-hashes with the same
  // function). Identity hashes compare bytes directly.
  bool verifies(std::span<const std::uint8_t> data) const;

  // Same order as the pre-COW defaulted comparisons: (code, digest bytes).
  // Copies share the digest buffer, so the common same-peer compare is a
  // pointer check.
  bool operator==(const Multihash& other) const {
    return code_ == other.code_ &&
           (digest_ == other.digest_ || digest() == other.digest());
  }
  std::strong_ordering operator<=>(const Multihash& other) const {
    if (const auto order = code_ <=> other.code_; order != 0) return order;
    if (digest_ == other.digest_) return std::strong_ordering::equal;
    return digest() <=> other.digest();
  }

 private:
  static const std::vector<std::uint8_t>& empty_digest();

  Multicodec code_ = Multicodec::kIdentity;
  std::shared_ptr<const std::vector<std::uint8_t>> digest_;
};

}  // namespace ipfs::multiformats
