// Multihash: self-describing hash digests — <fn-code varint><length
// varint><digest>. The paper's Figure 1 shows a Multihash embedded in a CID.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "multiformats/multicodec.h"

namespace ipfs::multiformats {

class Multihash {
 public:
  Multihash() = default;
  Multihash(Multicodec code, std::vector<std::uint8_t> digest);

  // Hashes data with sha2-256 (the IPFS default).
  static Multihash sha2_256(std::span<const std::uint8_t> data);

  // Wraps data verbatim (identity hash, used for small inline keys such as
  // Ed25519 public keys in libp2p PeerIDs).
  static Multihash identity(std::span<const std::uint8_t> data);

  // Parses the binary form. Returns nullopt on truncation or length
  // mismatch; `consumed` reports how many bytes the multihash occupied.
  static std::optional<Multihash> decode(std::span<const std::uint8_t> data,
                                         std::size_t* consumed = nullptr);

  std::vector<std::uint8_t> encode() const;

  Multicodec code() const { return code_; }
  const std::vector<std::uint8_t>& digest() const { return digest_; }

  // True if this multihash matches `data` (re-hashes with the same
  // function). Identity hashes compare bytes directly.
  bool verifies(std::span<const std::uint8_t> data) const;

  bool operator==(const Multihash& other) const = default;
  auto operator<=>(const Multihash& other) const = default;

 private:
  Multicodec code_ = Multicodec::kIdentity;
  std::vector<std::uint8_t> digest_;
};

}  // namespace ipfs::multiformats
