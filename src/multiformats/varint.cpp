#include "multiformats/varint.h"

namespace ipfs::multiformats {

void varint_encode(std::uint64_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::vector<std::uint8_t> varint_encode(std::uint64_t value) {
  std::vector<std::uint8_t> out;
  varint_encode(value, out);
  return out;
}

std::optional<VarintResult> varint_decode(std::span<const std::uint8_t> data) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < data.size() && i < 9; ++i) {
    value |= std::uint64_t{data[i] & 0x7fu} << (7 * i);
    if ((data[i] & 0x80) == 0) {
      if (i > 0 && data[i] == 0) return std::nullopt;  // non-minimal
      return VarintResult{value, i + 1};
    }
  }
  return std::nullopt;  // truncated or over 9 bytes
}

}  // namespace ipfs::multiformats
