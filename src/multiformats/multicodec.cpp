#include "multiformats/multicodec.h"

namespace ipfs::multiformats {

std::string_view multicodec_name(Multicodec codec) {
  switch (codec) {
    case Multicodec::kIdentity:
      return "identity";
    case Multicodec::kSha2_256:
      return "sha2-256";
    case Multicodec::kSha2_512:
      return "sha2-512";
    case Multicodec::kRaw:
      return "raw";
    case Multicodec::kDagPb:
      return "dag-pb";
    case Multicodec::kDagCbor:
      return "dag-cbor";
    case Multicodec::kLibp2pKey:
      return "libp2p-key";
    case Multicodec::kDagJson:
      return "dag-json";
  }
  return "unknown";
}

bool multicodec_is_known(std::uint64_t code) {
  switch (static_cast<Multicodec>(code)) {
    case Multicodec::kIdentity:
    case Multicodec::kSha2_256:
    case Multicodec::kSha2_512:
    case Multicodec::kRaw:
    case Multicodec::kDagPb:
    case Multicodec::kDagCbor:
    case Multicodec::kLibp2pKey:
    case Multicodec::kDagJson:
      return true;
  }
  return false;
}

}  // namespace ipfs::multiformats
