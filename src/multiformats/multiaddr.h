// Multiaddresses (paper Section 2.2, Figure 2): self-describing,
// hierarchical peer addresses such as /ip4/1.2.3.4/tcp/3333/p2p/QmZyWQ14...
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ipfs::multiformats {

enum class MultiaddrProtocol : std::uint64_t {
  kIp4 = 0x04,
  kTcp = 0x06,
  kIp6 = 0x29,
  kDns4 = 0x36,
  kDns6 = 0x37,
  kDnsaddr = 0x38,
  kUdp = 0x0111,
  kP2pCircuit = 0x0122,
  kP2p = 0x01a5,
  kQuic = 0x01cc,
  kQuicV1 = 0x01cd,
  kWs = 0x01dd,
  kWss = 0x01de,
};

struct MultiaddrComponent {
  MultiaddrProtocol protocol;
  std::vector<std::uint8_t> value;  // binary address payload (may be empty)

  bool operator==(const MultiaddrComponent&) const = default;
};

// Addresses are immutable after construction and copied with every
// PeerRef that flows through routing tables, DHT messages and crawl
// results, so the component list lives behind a shared buffer: a copy is
// a refcount bump rather than a fresh allocation per component payload.
class Multiaddr {
 public:
  Multiaddr() = default;
  explicit Multiaddr(std::vector<MultiaddrComponent> components);

  // Parses the human-readable path form. nullopt on any malformed segment.
  static std::optional<Multiaddr> parse(std::string_view text);

  // Parses the packed binary form.
  static std::optional<Multiaddr> decode(std::span<const std::uint8_t> data);

  std::vector<std::uint8_t> encode() const;
  std::string to_string() const;

  const std::vector<MultiaddrComponent>& components() const {
    return components_ ? *components_ : empty_components();
  }
  bool empty() const { return components().empty(); }

  // First component payload for `protocol`, if present.
  std::optional<std::vector<std::uint8_t>> value_for(
      MultiaddrProtocol protocol) const;

  // Appends a component (builder style).
  Multiaddr with(MultiaddrProtocol protocol,
                 std::vector<std::uint8_t> value = {}) const;

  // True if the address contains a relay hop (p2p-circuit).
  bool is_relayed() const;

  bool operator==(const Multiaddr& other) const {
    return components_ == other.components_ ||
           components() == other.components();
  }

 private:
  static const std::vector<MultiaddrComponent>& empty_components();

  std::shared_ptr<const std::vector<MultiaddrComponent>> components_;
};

// Convenience constructors used across the simulator.
Multiaddr make_tcp_multiaddr(std::string_view ip4, std::uint16_t port);
Multiaddr make_quic_multiaddr(std::string_view ip4, std::uint16_t port);

}  // namespace ipfs::multiformats
