// Multibase (self-describing base encodings). Supports the bases IPFS uses
// in practice: identity, base16, base32 (default for CIDv1), base58btc
// (CIDv0 / PeerIDs), base64 and base64url.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ipfs::multiformats {

enum class Multibase : char {
  kIdentity = '\0',
  kBase16 = 'f',
  kBase32 = 'b',       // RFC 4648 lowercase, no padding
  kBase58Btc = 'z',
  kBase64 = 'm',       // RFC 4648, no padding
  kBase64Url = 'u',    // RFC 4648 url-safe, no padding
};

// Encodes bytes with the given base, including the one-character prefix.
std::string multibase_encode(Multibase base, std::span<const std::uint8_t> data);

// Decodes a multibase string (prefix included). nullopt on unknown prefix
// or malformed payload.
std::optional<std::vector<std::uint8_t>> multibase_decode(std::string_view text);

// Raw encoders (no prefix) — exposed for CIDv0/base58 PeerIDs.
std::string base16_encode(std::span<const std::uint8_t> data);
std::string base32_encode(std::span<const std::uint8_t> data);
std::string base58btc_encode(std::span<const std::uint8_t> data);
std::string base64_encode(std::span<const std::uint8_t> data, bool url_safe);

std::optional<std::vector<std::uint8_t>> base16_decode(std::string_view text);
std::optional<std::vector<std::uint8_t>> base32_decode(std::string_view text);
std::optional<std::vector<std::uint8_t>> base58btc_decode(std::string_view text);
std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text,
                                                       bool url_safe);

}  // namespace ipfs::multiformats
