#include "multiformats/multiaddr.h"

#include <array>
#include <charconv>
#include <cstdio>

#include "multiformats/multibase.h"
#include "multiformats/multihash.h"
#include "multiformats/varint.h"

namespace ipfs::multiformats {
namespace {

enum class PayloadKind { kNone, kFixed, kLengthPrefixed };

struct ProtocolSpec {
  MultiaddrProtocol protocol;
  std::string_view name;
  PayloadKind kind;
  std::size_t fixed_bytes;  // for kFixed
};

constexpr std::array<ProtocolSpec, 13> kProtocols = {{
    {MultiaddrProtocol::kIp4, "ip4", PayloadKind::kFixed, 4},
    {MultiaddrProtocol::kTcp, "tcp", PayloadKind::kFixed, 2},
    {MultiaddrProtocol::kIp6, "ip6", PayloadKind::kFixed, 16},
    {MultiaddrProtocol::kDns4, "dns4", PayloadKind::kLengthPrefixed, 0},
    {MultiaddrProtocol::kDns6, "dns6", PayloadKind::kLengthPrefixed, 0},
    {MultiaddrProtocol::kDnsaddr, "dnsaddr", PayloadKind::kLengthPrefixed, 0},
    {MultiaddrProtocol::kUdp, "udp", PayloadKind::kFixed, 2},
    {MultiaddrProtocol::kP2pCircuit, "p2p-circuit", PayloadKind::kNone, 0},
    {MultiaddrProtocol::kP2p, "p2p", PayloadKind::kLengthPrefixed, 0},
    {MultiaddrProtocol::kQuic, "quic", PayloadKind::kNone, 0},
    {MultiaddrProtocol::kQuicV1, "quic-v1", PayloadKind::kNone, 0},
    {MultiaddrProtocol::kWs, "ws", PayloadKind::kNone, 0},
    {MultiaddrProtocol::kWss, "wss", PayloadKind::kNone, 0},
}};

const ProtocolSpec* spec_by_name(std::string_view name) {
  for (const auto& spec : kProtocols)
    if (spec.name == name) return &spec;
  return nullptr;
}

const ProtocolSpec* spec_by_code(std::uint64_t code) {
  for (const auto& spec : kProtocols)
    if (static_cast<std::uint64_t>(spec.protocol) == code) return &spec;
  return nullptr;
}

std::optional<std::vector<std::uint8_t>> parse_ip4(std::string_view text) {
  std::vector<std::uint8_t> out;
  out.reserve(4);
  std::size_t start = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t dot = (i < 3) ? text.find('.', start) : text.size();
    if (dot == std::string_view::npos) return std::nullopt;
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + start, text.data() + dot, value);
    if (ec != std::errc{} || ptr != text.data() + dot || value > 255)
      return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(value));
    start = dot + 1;
  }
  return out;
}

std::string ip4_to_string(std::span<const std::uint8_t> bytes) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes[0], bytes[1], bytes[2],
                bytes[3]);
  return buf;
}

// Minimal IPv6 textual parser supporting one "::" compression.
std::optional<std::vector<std::uint8_t>> parse_ip6(std::string_view text) {
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool seen_gap = false;

  auto parse_groups = [](std::string_view part,
                         std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    std::size_t start = 0;
    while (start <= part.size()) {
      const std::size_t colon = part.find(':', start);
      const std::size_t end =
          (colon == std::string_view::npos) ? part.size() : colon;
      unsigned value = 0;
      const auto [ptr, ec] = std::from_chars(part.data() + start,
                                             part.data() + end, value, 16);
      if (ec != std::errc{} || ptr != part.data() + end || value > 0xffff)
        return false;
      out.push_back(static_cast<std::uint16_t>(value));
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    return true;
  };

  const std::size_t gap = text.find("::");
  if (gap != std::string_view::npos) {
    seen_gap = true;
    if (!parse_groups(text.substr(0, gap), head)) return std::nullopt;
    if (!parse_groups(text.substr(gap + 2), tail)) return std::nullopt;
  } else {
    if (!parse_groups(text, head)) return std::nullopt;
  }

  const std::size_t total = head.size() + tail.size();
  if ((seen_gap && total >= 8) || (!seen_gap && total != 8))
    return std::nullopt;

  std::vector<std::uint16_t> groups = head;
  groups.insert(groups.end(), 8 - total, 0);
  groups.insert(groups.end(), tail.begin(), tail.end());

  std::vector<std::uint8_t> out;
  out.reserve(16);
  for (const std::uint16_t g : groups) {
    out.push_back(static_cast<std::uint8_t>(g >> 8));
    out.push_back(static_cast<std::uint8_t>(g & 0xff));
  }
  return out;
}

std::string ip6_to_string(std::span<const std::uint8_t> bytes) {
  // Canonical-enough form: full groups, lowercase hex, no compression.
  std::string out;
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    const unsigned group = (unsigned{bytes[2 * i]} << 8) | bytes[2 * i + 1];
    std::snprintf(buf, sizeof(buf), "%x", group);
    if (i > 0) out.push_back(':');
    out += buf;
  }
  return out;
}

}  // namespace

Multiaddr::Multiaddr(std::vector<MultiaddrComponent> components)
    : components_(std::make_shared<const std::vector<MultiaddrComponent>>(
          std::move(components))) {}

const std::vector<MultiaddrComponent>& Multiaddr::empty_components() {
  static const std::vector<MultiaddrComponent> empty;
  return empty;
}

std::optional<Multiaddr> Multiaddr::parse(std::string_view text) {
  if (text.empty() || text[0] != '/') return std::nullopt;
  std::vector<MultiaddrComponent> components;

  std::size_t pos = 1;
  while (pos <= text.size()) {
    const std::size_t slash = text.find('/', pos);
    const std::size_t end =
        (slash == std::string_view::npos) ? text.size() : slash;
    const std::string_view name = text.substr(pos, end - pos);
    if (name.empty()) {
      if (end == text.size()) break;  // trailing slash
      return std::nullopt;
    }
    const ProtocolSpec* spec = spec_by_name(name);
    if (spec == nullptr) return std::nullopt;

    MultiaddrComponent component{spec->protocol, {}};
    if (spec->kind != PayloadKind::kNone) {
      if (end == text.size()) return std::nullopt;  // missing value
      const std::size_t value_start = end + 1;
      const std::size_t value_slash = text.find('/', value_start);
      const std::size_t value_end =
          (value_slash == std::string_view::npos) ? text.size() : value_slash;
      const std::string_view value = text.substr(value_start,
                                                 value_end - value_start);
      switch (spec->protocol) {
        case MultiaddrProtocol::kIp4: {
          auto bytes = parse_ip4(value);
          if (!bytes) return std::nullopt;
          component.value = std::move(*bytes);
          break;
        }
        case MultiaddrProtocol::kIp6: {
          auto bytes = parse_ip6(value);
          if (!bytes) return std::nullopt;
          component.value = std::move(*bytes);
          break;
        }
        case MultiaddrProtocol::kTcp:
        case MultiaddrProtocol::kUdp: {
          unsigned port = 0;
          const auto [ptr, ec] = std::from_chars(
              value.data(), value.data() + value.size(), port);
          if (ec != std::errc{} || ptr != value.data() + value.size() ||
              port > 65535)
            return std::nullopt;
          component.value = {static_cast<std::uint8_t>(port >> 8),
                             static_cast<std::uint8_t>(port & 0xff)};
          break;
        }
        case MultiaddrProtocol::kP2p: {
          // PeerIDs render as base58btc multihashes.
          auto bytes = base58btc_decode(value);
          if (!bytes || !Multihash::decode(*bytes)) return std::nullopt;
          component.value = std::move(*bytes);
          break;
        }
        default:  // dns names: raw UTF-8 bytes
          component.value.assign(value.begin(), value.end());
          break;
      }
      pos = value_end + 1;
    } else {
      pos = end + 1;
    }
    components.push_back(std::move(component));
    if (end == text.size() ||
        (spec->kind != PayloadKind::kNone && pos > text.size()))
      break;
  }

  if (components.empty()) return std::nullopt;
  return Multiaddr(std::move(components));
}

std::optional<Multiaddr> Multiaddr::decode(
    std::span<const std::uint8_t> data) {
  std::vector<MultiaddrComponent> components;
  while (!data.empty()) {
    const auto code = varint_decode(data);
    if (!code) return std::nullopt;
    data = data.subspan(code->consumed);
    const ProtocolSpec* spec = spec_by_code(code->value);
    if (spec == nullptr) return std::nullopt;

    MultiaddrComponent component{spec->protocol, {}};
    switch (spec->kind) {
      case PayloadKind::kNone:
        break;
      case PayloadKind::kFixed:
        if (data.size() < spec->fixed_bytes) return std::nullopt;
        component.value.assign(data.begin(), data.begin() + spec->fixed_bytes);
        data = data.subspan(spec->fixed_bytes);
        break;
      case PayloadKind::kLengthPrefixed: {
        const auto length = varint_decode(data);
        if (!length) return std::nullopt;
        data = data.subspan(length->consumed);
        if (data.size() < length->value) return std::nullopt;
        component.value.assign(data.begin(), data.begin() + length->value);
        data = data.subspan(length->value);
        break;
      }
    }
    components.push_back(std::move(component));
  }
  if (components.empty()) return std::nullopt;
  return Multiaddr(std::move(components));
}

std::vector<std::uint8_t> Multiaddr::encode() const {
  std::vector<std::uint8_t> out;
  for (const auto& component : components()) {
    varint_encode(static_cast<std::uint64_t>(component.protocol), out);
    const ProtocolSpec* spec =
        spec_by_code(static_cast<std::uint64_t>(component.protocol));
    if (spec->kind == PayloadKind::kLengthPrefixed)
      varint_encode(component.value.size(), out);
    out.insert(out.end(), component.value.begin(), component.value.end());
  }
  return out;
}

std::string Multiaddr::to_string() const {
  std::string out;
  for (const auto& component : components()) {
    const ProtocolSpec* spec =
        spec_by_code(static_cast<std::uint64_t>(component.protocol));
    out.push_back('/');
    out += spec->name;
    if (spec->kind == PayloadKind::kNone) continue;
    out.push_back('/');
    switch (component.protocol) {
      case MultiaddrProtocol::kIp4:
        out += ip4_to_string(component.value);
        break;
      case MultiaddrProtocol::kIp6:
        out += ip6_to_string(component.value);
        break;
      case MultiaddrProtocol::kTcp:
      case MultiaddrProtocol::kUdp:
        out += std::to_string((unsigned{component.value[0]} << 8) |
                              component.value[1]);
        break;
      case MultiaddrProtocol::kP2p:
        out += base58btc_encode(component.value);
        break;
      default:
        out.append(component.value.begin(), component.value.end());
        break;
    }
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> Multiaddr::value_for(
    MultiaddrProtocol protocol) const {
  for (const auto& component : components())
    if (component.protocol == protocol) return component.value;
  return std::nullopt;
}

Multiaddr Multiaddr::with(MultiaddrProtocol protocol,
                          std::vector<std::uint8_t> value) const {
  auto copy = components();
  copy.push_back({protocol, std::move(value)});
  return Multiaddr(std::move(copy));
}

bool Multiaddr::is_relayed() const {
  return value_for(MultiaddrProtocol::kP2pCircuit).has_value();
}

Multiaddr make_tcp_multiaddr(std::string_view ip4, std::uint16_t port) {
  auto addr = Multiaddr::parse("/ip4/" + std::string(ip4) + "/tcp/" +
                               std::to_string(port));
  return addr ? *addr : Multiaddr{};
}

Multiaddr make_quic_multiaddr(std::string_view ip4, std::uint16_t port) {
  auto addr = Multiaddr::parse("/ip4/" + std::string(ip4) + "/udp/" +
                               std::to_string(port) + "/quic");
  return addr ? *addr : Multiaddr{};
}

}  // namespace ipfs::multiformats
