#include "multiformats/peerid.h"

#include "multiformats/multibase.h"

namespace ipfs::multiformats {
namespace {

// libp2p PublicKey protobuf: field 1 (key_type) = Ed25519(1),
// field 2 (data) = 32 key bytes.
constexpr std::uint8_t kProtobufHeader[] = {0x08, 0x01, 0x12, 0x20};

}  // namespace

PeerId PeerId::from_public_key(const crypto::Ed25519PublicKey& key) {
  std::vector<std::uint8_t> framed;
  framed.reserve(sizeof(kProtobufHeader) + key.size());
  framed.insert(framed.end(), std::begin(kProtobufHeader),
                std::end(kProtobufHeader));
  framed.insert(framed.end(), key.begin(), key.end());
  return PeerId(Multihash::identity(framed));
}

std::optional<PeerId> PeerId::parse(std::string_view text) {
  const auto bytes = base58btc_decode(text);
  if (!bytes) return std::nullopt;
  std::size_t consumed = 0;
  auto hash = Multihash::decode(*bytes, &consumed);
  if (!hash || consumed != bytes->size()) return std::nullopt;
  return PeerId(std::move(*hash));
}

std::string PeerId::to_base58() const { return base58btc_encode(encode()); }

std::optional<crypto::Ed25519PublicKey> PeerId::public_key() const {
  if (hash_.code() != Multicodec::kIdentity) return std::nullopt;
  const auto& framed = hash_.digest();
  if (framed.size() != sizeof(kProtobufHeader) + 32) return std::nullopt;
  if (!std::equal(std::begin(kProtobufHeader), std::end(kProtobufHeader),
                  framed.begin()))
    return std::nullopt;
  crypto::Ed25519PublicKey key;
  std::copy(framed.begin() + sizeof(kProtobufHeader), framed.end(),
            key.begin());
  return key;
}

}  // namespace ipfs::multiformats
