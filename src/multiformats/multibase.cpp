#include "multiformats/multibase.h"

#include <algorithm>
#include <array>

namespace ipfs::multiformats {
namespace {

constexpr std::string_view kBase32Alphabet = "abcdefghijklmnopqrstuvwxyz234567";
constexpr std::string_view kBase58Alphabet =
    "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";
constexpr std::string_view kBase64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr std::string_view kBase64UrlAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

// Builds a 256-entry reverse lookup; -1 marks invalid characters.
std::array<std::int8_t, 256> reverse_table(std::string_view alphabet) {
  std::array<std::int8_t, 256> table;
  table.fill(-1);
  for (std::size_t i = 0; i < alphabet.size(); ++i)
    table[static_cast<std::uint8_t>(alphabet[i])] =
        static_cast<std::int8_t>(i);
  return table;
}

}  // namespace

std::string base16_encode(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0f]);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base16_decode(std::string_view text) {
  if (text.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out(text.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = nibble(text[2 * i]);
    const int lo = nibble(text[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

std::string base32_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (const std::uint8_t b : data) {
    buffer = (buffer << 8) | b;
    bits += 8;
    while (bits >= 5) {
      out.push_back(kBase32Alphabet[(buffer >> (bits - 5)) & 0x1f]);
      bits -= 5;
    }
  }
  if (bits > 0) out.push_back(kBase32Alphabet[(buffer << (5 - bits)) & 0x1f]);
  return out;
}

std::optional<std::vector<std::uint8_t>> base32_decode(std::string_view text) {
  static const auto kTable = reverse_table(kBase32Alphabet);
  std::vector<std::uint8_t> out;
  out.reserve(text.size() * 5 / 8);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (const char c : text) {
    const std::int8_t v = kTable[static_cast<std::uint8_t>(c)];
    if (v < 0) return std::nullopt;
    buffer = (buffer << 5) | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(buffer >> (bits - 8)));
      bits -= 8;
    }
  }
  // Leftover bits must be zero padding.
  if (bits > 0 && (buffer & ((1u << bits) - 1)) != 0) return std::nullopt;
  return out;
}

std::string base58btc_encode(std::span<const std::uint8_t> data) {
  // Count leading zero bytes; each maps to a '1'.
  std::size_t zeros = 0;
  while (zeros < data.size() && data[zeros] == 0) ++zeros;

  // Base conversion via repeated division (digits little-endian).
  std::vector<std::uint8_t> digits;
  for (std::size_t i = zeros; i < data.size(); ++i) {
    std::uint32_t carry = data[i];
    for (auto& d : digits) {
      const std::uint32_t value = (static_cast<std::uint32_t>(d) << 8) | carry;
      d = static_cast<std::uint8_t>(value % 58);
      carry = value / 58;
    }
    while (carry > 0) {
      digits.push_back(static_cast<std::uint8_t>(carry % 58));
      carry /= 58;
    }
  }

  std::string out(zeros, '1');
  for (auto it = digits.rbegin(); it != digits.rend(); ++it)
    out.push_back(kBase58Alphabet[*it]);
  return out;
}

std::optional<std::vector<std::uint8_t>> base58btc_decode(
    std::string_view text) {
  static const auto kTable = reverse_table(kBase58Alphabet);
  std::size_t zeros = 0;
  while (zeros < text.size() && text[zeros] == '1') ++zeros;

  std::vector<std::uint8_t> bytes;
  for (std::size_t i = zeros; i < text.size(); ++i) {
    const std::int8_t v = kTable[static_cast<std::uint8_t>(text[i])];
    if (v < 0) return std::nullopt;
    std::uint32_t carry = static_cast<std::uint32_t>(v);
    for (auto& b : bytes) {
      const std::uint32_t value = static_cast<std::uint32_t>(b) * 58 + carry;
      b = static_cast<std::uint8_t>(value & 0xff);
      carry = value >> 8;
    }
    while (carry > 0) {
      bytes.push_back(static_cast<std::uint8_t>(carry & 0xff));
      carry >>= 8;
    }
  }

  std::vector<std::uint8_t> out(zeros, 0);
  out.insert(out.end(), bytes.rbegin(), bytes.rend());
  return out;
}

std::string base64_encode(std::span<const std::uint8_t> data, bool url_safe) {
  const std::string_view alphabet =
      url_safe ? kBase64UrlAlphabet : kBase64Alphabet;
  std::string out;
  out.reserve((data.size() * 4 + 2) / 3);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (const std::uint8_t b : data) {
    buffer = (buffer << 8) | b;
    bits += 8;
    while (bits >= 6) {
      out.push_back(alphabet[(buffer >> (bits - 6)) & 0x3f]);
      bits -= 6;
    }
  }
  if (bits > 0) out.push_back(alphabet[(buffer << (6 - bits)) & 0x3f]);
  return out;
}

std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text,
                                                       bool url_safe) {
  static const auto kStd = reverse_table(kBase64Alphabet);
  static const auto kUrl = reverse_table(kBase64UrlAlphabet);
  const auto& table = url_safe ? kUrl : kStd;
  std::vector<std::uint8_t> out;
  out.reserve(text.size() * 3 / 4);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (const char c : text) {
    const std::int8_t v = table[static_cast<std::uint8_t>(c)];
    if (v < 0) return std::nullopt;
    buffer = (buffer << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(buffer >> (bits - 8)));
      bits -= 8;
    }
  }
  if (bits > 0 && (buffer & ((1u << bits) - 1)) != 0) return std::nullopt;
  return out;
}

std::string multibase_encode(Multibase base,
                             std::span<const std::uint8_t> data) {
  switch (base) {
    case Multibase::kIdentity: {
      std::string out(1, '\0');
      out.append(reinterpret_cast<const char*>(data.data()), data.size());
      return out;
    }
    case Multibase::kBase16:
      return "f" + base16_encode(data);
    case Multibase::kBase32:
      return "b" + base32_encode(data);
    case Multibase::kBase58Btc:
      return "z" + base58btc_encode(data);
    case Multibase::kBase64:
      return "m" + base64_encode(data, /*url_safe=*/false);
    case Multibase::kBase64Url:
      return "u" + base64_encode(data, /*url_safe=*/true);
  }
  return {};
}

std::optional<std::vector<std::uint8_t>> multibase_decode(
    std::string_view text) {
  if (text.empty()) return std::nullopt;
  const char prefix = text.front();
  const std::string_view payload = text.substr(1);
  switch (prefix) {
    case '\0':
      return std::vector<std::uint8_t>(payload.begin(), payload.end());
    case 'f':
    case 'F':
      return base16_decode(payload);
    case 'b':
      return base32_decode(payload);
    case 'z':
      return base58btc_decode(payload);
    case 'm':
      return base64_decode(payload, /*url_safe=*/false);
    case 'u':
      return base64_decode(payload, /*url_safe=*/true);
    default:
      return std::nullopt;
  }
}

}  // namespace ipfs::multiformats
