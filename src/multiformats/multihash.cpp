#include "multiformats/multihash.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "multiformats/varint.h"

namespace ipfs::multiformats {

Multihash::Multihash(Multicodec code, std::vector<std::uint8_t> digest)
    : code_(code),
      digest_(std::make_shared<const std::vector<std::uint8_t>>(
          std::move(digest))) {}

const std::vector<std::uint8_t>& Multihash::empty_digest() {
  static const std::vector<std::uint8_t> empty;
  return empty;
}

Multihash Multihash::sha2_256(std::span<const std::uint8_t> data) {
  const auto digest = crypto::sha256(data);
  return Multihash(Multicodec::kSha2_256,
                   std::vector<std::uint8_t>(digest.begin(), digest.end()));
}

Multihash Multihash::identity(std::span<const std::uint8_t> data) {
  return Multihash(Multicodec::kIdentity,
                   std::vector<std::uint8_t>(data.begin(), data.end()));
}

std::optional<Multihash> Multihash::decode(std::span<const std::uint8_t> data,
                                           std::size_t* consumed) {
  const auto code = varint_decode(data);
  if (!code) return std::nullopt;
  auto rest = data.subspan(code->consumed);
  const auto length = varint_decode(rest);
  if (!length) return std::nullopt;
  rest = rest.subspan(length->consumed);
  if (rest.size() < length->value) return std::nullopt;
  // Defensive cap: digests beyond 512 bits are not legal in this codebase.
  if (length->value > 64) return std::nullopt;

  if (consumed != nullptr)
    *consumed = code->consumed + length->consumed + length->value;
  return Multihash(
      static_cast<Multicodec>(code->value),
      std::vector<std::uint8_t>(rest.begin(), rest.begin() + length->value));
}

std::vector<std::uint8_t> Multihash::encode() const {
  std::vector<std::uint8_t> out;
  varint_encode(static_cast<std::uint64_t>(code_), out);
  varint_encode(digest().size(), out);
  out.insert(out.end(), digest().begin(), digest().end());
  return out;
}

bool Multihash::verifies(std::span<const std::uint8_t> data) const {
  const auto& bytes = digest();
  switch (code_) {
    case Multicodec::kSha2_256: {
      const auto digest = crypto::sha256(data);
      return bytes.size() == digest.size() &&
             std::equal(bytes.begin(), bytes.end(), digest.begin());
    }
    case Multicodec::kSha2_512: {
      const auto digest = crypto::sha512(data);
      return bytes.size() == digest.size() &&
             std::equal(bytes.begin(), bytes.end(), digest.begin());
    }
    case Multicodec::kIdentity:
      return bytes.size() == data.size() &&
             std::equal(bytes.begin(), bytes.end(), data.begin());
    default:
      return false;
  }
}

}  // namespace ipfs::multiformats
