// Multicodec table (subset of https://github.com/multiformats/multicodec
// that IPFS uses on its hot paths).
#pragma once

#include <cstdint>
#include <string_view>

namespace ipfs::multiformats {

enum class Multicodec : std::uint64_t {
  kIdentity = 0x00,
  kSha2_256 = 0x12,
  kSha2_512 = 0x13,
  kRaw = 0x55,
  kDagPb = 0x70,
  kDagCbor = 0x71,
  kLibp2pKey = 0x72,
  kDagJson = 0x0129,
};

// Human-readable codec name ("raw", "dag-pb", ...); "unknown" if absent.
std::string_view multicodec_name(Multicodec codec);

// True for codecs this library can carry inside a CID.
bool multicodec_is_known(std::uint64_t code);

}  // namespace ipfs::multiformats
