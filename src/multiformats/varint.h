// Unsigned varint (multiformats/unsigned-varint): LEB128, max 9 bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ipfs::multiformats {

// Appends the varint encoding of value to out.
void varint_encode(std::uint64_t value, std::vector<std::uint8_t>& out);

std::vector<std::uint8_t> varint_encode(std::uint64_t value);

struct VarintResult {
  std::uint64_t value;
  std::size_t consumed;
};

// Decodes a varint from the front of data. Returns nullopt on truncated
// input, non-minimal encodings, or values exceeding 63 bits (spec limit).
std::optional<VarintResult> varint_decode(std::span<const std::uint8_t> data);

}  // namespace ipfs::multiformats
