#include "multiformats/cid.h"

#include "multiformats/varint.h"

namespace ipfs::multiformats {

Cid Cid::v0(Multihash hash) {
  Cid cid;
  cid.version_ = 0;
  cid.content_codec_ = Multicodec::kDagPb;
  cid.hash_ = std::move(hash);
  return cid;
}

Cid Cid::v1(Multicodec content_codec, Multihash hash) {
  Cid cid;
  cid.version_ = 1;
  cid.content_codec_ = content_codec;
  cid.hash_ = std::move(hash);
  return cid;
}

Cid Cid::from_data(Multicodec content_codec,
                   std::span<const std::uint8_t> data) {
  return v1(content_codec, Multihash::sha2_256(data));
}

std::optional<Cid> Cid::decode(std::span<const std::uint8_t> data) {
  // CIDv0 heuristic per spec: 34 bytes starting 0x12 0x20 is a bare
  // sha2-256 multihash (0x12 would otherwise be an invalid version).
  if (data.size() == 34 && data[0] == 0x12 && data[1] == 0x20) {
    auto hash = Multihash::decode(data);
    if (!hash) return std::nullopt;
    return v0(std::move(*hash));
  }

  const auto version = varint_decode(data);
  if (!version || version->value != 1) return std::nullopt;
  auto rest = data.subspan(version->consumed);
  const auto codec = varint_decode(rest);
  if (!codec || !multicodec_is_known(codec->value)) return std::nullopt;
  rest = rest.subspan(codec->consumed);
  std::size_t consumed = 0;
  auto hash = Multihash::decode(rest, &consumed);
  if (!hash || consumed != rest.size()) return std::nullopt;
  return v1(static_cast<Multicodec>(codec->value), std::move(*hash));
}

std::optional<Cid> Cid::parse(std::string_view text) {
  if (text.size() == 46 && text.starts_with("Qm")) {
    const auto bytes = base58btc_decode(text);
    if (!bytes) return std::nullopt;
    return decode(*bytes);
  }
  const auto bytes = multibase_decode(text);
  if (!bytes) return std::nullopt;
  return decode(*bytes);
}

std::vector<std::uint8_t> Cid::encode() const {
  if (version_ == 0) return hash_.encode();
  std::vector<std::uint8_t> out;
  varint_encode(1, out);
  varint_encode(static_cast<std::uint64_t>(content_codec_), out);
  const auto hash_bytes = hash_.encode();
  out.insert(out.end(), hash_bytes.begin(), hash_bytes.end());
  return out;
}

std::string Cid::to_string(Multibase base) const {
  const auto bytes = encode();
  if (version_ == 0) return base58btc_encode(bytes);
  return multibase_encode(base, bytes);
}

Cid Cid::as_v1() const {
  if (version_ == 1) return *this;
  return v1(Multicodec::kDagPb, hash_);
}

}  // namespace ipfs::multiformats
