// Content Identifiers (paper Section 2.1, Figure 1).
//
// CIDv0: bare sha2-256 multihash of a dag-pb node, rendered base58btc
//        ("Qm...", no multibase prefix).
// CIDv1: <version varint><content-codec varint><multihash>, rendered with a
//        multibase prefix (default base32, "b...").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "multiformats/multibase.h"
#include "multiformats/multicodec.h"
#include "multiformats/multihash.h"

namespace ipfs::multiformats {

class Cid {
 public:
  Cid() = default;

  static Cid v0(Multihash hash);  // hash must be sha2-256
  static Cid v1(Multicodec content_codec, Multihash hash);

  // Convenience: hash `data` with sha2-256 and wrap as CIDv1 of `codec`.
  static Cid from_data(Multicodec content_codec,
                       std::span<const std::uint8_t> data);

  // Parses either a binary CID or its textual form.
  static std::optional<Cid> decode(std::span<const std::uint8_t> data);
  static std::optional<Cid> parse(std::string_view text);

  // Binary encoding. CIDv0 encodes as the bare multihash.
  std::vector<std::uint8_t> encode() const;

  // Canonical textual form: base58btc for v0, multibase (default base32)
  // for v1.
  std::string to_string(Multibase base = Multibase::kBase32) const;

  // Converts a CIDv0 to its CIDv1 (dag-pb) equivalent; identity on v1.
  Cid as_v1() const;

  int version() const { return version_; }
  Multicodec content_codec() const { return content_codec_; }
  const Multihash& hash() const { return hash_; }

  bool operator==(const Cid& other) const = default;
  auto operator<=>(const Cid& other) const = default;

 private:
  int version_ = 1;
  Multicodec content_codec_ = Multicodec::kRaw;
  Multihash hash_;
};

}  // namespace ipfs::multiformats
