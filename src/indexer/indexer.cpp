#include "indexer/indexer.h"

#include <memory>
#include <utility>

#include "transport/sim_transport.h"

namespace ipfs::indexer {

Indexer::Indexer(transport::Transport& transport, IndexerConfig config)
    : transport_(transport), config_(std::move(config)) {
  node_ = transport_.local();
  transport_.set_request_handler(
      [this](sim::NodeId, const sim::MessagePtr& message,
             std::function<void(sim::MessagePtr, std::size_t)> respond) {
        if (const auto* query = dynamic_cast<const QueryRequest*>(
                message.get())) {
          answer_query(*query, respond);
        }
      });
  transport_.set_message_handler(
      [this](sim::NodeId, const sim::MessagePtr& message) {
        if (const auto* ad = dynamic_cast<const AdvertiseMessage*>(
                message.get())) {
          on_advertise(*ad);
        }
      });
}

Indexer::Indexer(std::unique_ptr<transport::Transport> transport,
                 IndexerConfig config)
    : Indexer(*transport, std::move(config)) {
  owned_transport_ = std::move(transport);
}

Indexer::Indexer(sim::Network& network, IndexerConfig config)
    : Indexer(std::make_unique<transport::SimTransport>(network, config.net),
              config) {}

Indexer::~Indexer() { ingest_timer_.cancel(); }

void Indexer::on_advertise(const AdvertiseMessage& ad) {
  ++advertisements_received_;
  transport_.metrics().counter("indexer.advertisements").inc();
  PendingAd pending;
  pending.key = ad.key;
  pending.record.provider = ad.provider;
  pending.record.received_at = transport_.now();
  pending.visible_at = transport_.now() + config_.ingest_lag;
  pending_.push_back(std::move(pending));
  arm_ingest_timer();
}

void Indexer::arm_ingest_timer() {
  if (pending_.empty() || ingest_timer_.active()) return;
  ingest_timer_ = transport_.schedule_daemon_at(
      pending_.front().visible_at, [this] { ingest_due(); });
}

void Indexer::ingest_due() {
  const sim::Time now = transport_.now();
  while (!pending_.empty() && pending_.front().visible_at <= now) {
    PendingAd ad = std::move(pending_.front());
    pending_.pop_front();
    auto& records = index_[ad.key];
    // Re-advertisement by the same provider refreshes in place.
    bool refreshed = false;
    for (auto& visible : records) {
      if (visible.record.provider.id == ad.record.provider.id) {
        visible.record = ad.record;
        visible.expires_at = now + config_.provider_ttl;
        refreshed = true;
        break;
      }
    }
    if (!refreshed) {
      records.push_back({std::move(ad.record), now + config_.provider_ttl});
    }
    transport_.metrics().counter("indexer.ingested").inc();
  }
  arm_ingest_timer();
}

void Indexer::answer_query(
    const QueryRequest& query,
    const std::function<void(sim::MessagePtr, std::size_t)>& respond) {
  ++queries_served_;
  transport_.metrics().counter("indexer.queries").inc();
  auto response = std::make_shared<QueryResponse>();
  const auto it = index_.find(query.key);
  if (it != index_.end()) {
    const sim::Time now = transport_.now();
    // Prune expired records on read: the index holds only what a query
    // may still return.
    auto& records = it->second;
    std::erase_if(records, [now](const VisibleRecord& visible) {
      return visible.expires_at <= now;
    });
    for (const VisibleRecord& visible : records) {
      response->providers.push_back(visible.record);
    }
    if (records.empty()) index_.erase(it);
  }
  const std::size_t bytes = query_response_size(response->providers.size());
  respond(std::move(response), bytes);
}

void Indexer::handle_crash() {
  index_.clear();
  pending_.clear();
  ingest_timer_.cancel();
}

void Indexer::handle_restart() {
  // Nothing to re-arm: the ingest timer is armed by the next
  // advertisement, and the index refills from the re-advertise stream.
}

std::size_t Indexer::visible_provider_count(const dht::Key& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return 0;
  const sim::Time now = transport_.now();
  std::size_t count = 0;
  for (const VisibleRecord& visible : it->second) {
    if (visible.expires_at > now) ++count;
  }
  return count;
}

}  // namespace ipfs::indexer
