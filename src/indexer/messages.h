// Wire messages of the delegated-routing indexer protocol (modelled on
// the IPNI advertisement/query split used by cid.contact). Sizes are
// approximations that only influence simulated transfer delays.
#pragma once

#include <cstddef>
#include <vector>

#include "dht/key.h"
#include "dht/messages.h"
#include "sim/network.h"

namespace ipfs::indexer {

// Advertisement pushed by a content provider on provide/reprovide.
// Fire-and-forget, like the DHT's ADD_PROVIDER: the publisher does not
// wait for an acknowledgement, and the indexer ingests asynchronously.
struct AdvertiseMessage : sim::Message {
  dht::Key key;
  dht::PeerRef provider;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kAdvertiseMessage;
  }
};

// One-RTT delegated provider lookup.
struct QueryRequest : sim::Message {
  dht::Key key;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kQueryRequest;
  }
};

struct QueryResponse : sim::Message {
  std::vector<dht::ProviderRecord> providers;
  sim::MessageKind kind() const override {
    return sim::MessageKind::kQueryResponse;
  }
};

constexpr std::size_t kAdvertiseBytes =
    dht::kRequestBaseBytes + dht::kPeerRefBytes;
constexpr std::size_t kQueryBytes = dht::kRequestBaseBytes;

inline std::size_t query_response_size(std::size_t records) {
  return dht::kRequestBaseBytes + records * dht::kPeerRefBytes;
}

}  // namespace ipfs::indexer
