// Network indexer: a delegated content-routing node (paper Section 6.2
// discussion; the production network's cid.contact, whose rise — and
// centralization trade-off — is documented in "The Cloud Strikes Back",
// Balduf et al.).
//
// Providers push advertisements on provide/reprovide ("fire and
// forget", like the DHT's ADD_PROVIDER); the indexer ingests them with a
// configurable pipeline lag before they become visible to queries, and
// answers provider lookups in a single RTT from an in-memory index. The
// index is soft state: a crash wipes it, and durability comes from the
// 12 h re-advertisement stream (DhtNode's republish timer re-pushes to
// indexers), mirroring how IPNI indexers re-sync advertisement chains.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "dht/key.h"
#include "dht/messages.h"
#include "indexer/messages.h"
#include "transport/transport.h"

namespace ipfs::indexer {

struct IndexerConfig {
  // Indexers are well-provisioned, dialable infrastructure nodes.
  sim::NodeConfig net = sim::NodeConfig{}.with_bandwidth(100.0 * 1024 * 1024,
                                                         100.0 * 1024 * 1024);
  // Delay between an advertisement arriving and its records becoming
  // visible to queries: the ingest/processing pipeline of a real indexer
  // (advertisement chains are fetched and indexed in batches).
  sim::Duration ingest_lag = sim::seconds(30);
  // Visibility lifetime of an ingested record; refreshed whenever the
  // same provider re-advertises the same key.
  sim::Duration provider_ttl = sim::hours(24);

  IndexerConfig& with_net(sim::NodeConfig config) {
    net = config;
    return *this;
  }
  IndexerConfig& with_ingest_lag(sim::Duration lag) {
    ingest_lag = lag;
    return *this;
  }
  IndexerConfig& with_provider_ttl(sim::Duration ttl) {
    provider_ttl = ttl;
    return *this;
  }
};

class Indexer {
 public:
  // Serves over an existing transport endpoint (installs its handlers).
  Indexer(transport::Transport& transport, IndexerConfig config);
  // Simulator convenience: adds a fresh node (config.net) to the fabric
  // and wraps it in an owned SimTransport.
  Indexer(sim::Network& network, IndexerConfig config);
  ~Indexer();

  Indexer(const Indexer&) = delete;
  Indexer& operator=(const Indexer&) = delete;

  sim::NodeId node() const { return node_; }
  transport::Transport& transport() { return transport_; }
  const IndexerConfig& config() const { return config_; }

  // --- Crash/restart (sim/faults.h conventions) ---------------------------
  //
  // A crash wipes the index and the ingest queue (soft state) and stops
  // the ingest timer. Call after Network::set_online(node, false);
  // records reappear as providers re-advertise (the 12 h republish
  // stream). handle_restart() is the post-set_online(true) hook.
  void handle_crash();
  void handle_restart();

  // --- Introspection ------------------------------------------------------

  // Records for `key` currently visible to queries (expired ones pruned).
  std::size_t visible_provider_count(const dht::Key& key) const;
  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t advertisements_received() const {
    return advertisements_received_;
  }
  std::uint64_t queries_served() const { return queries_served_; }

 private:
  Indexer(std::unique_ptr<transport::Transport> transport,
          IndexerConfig config);

  struct PendingAd {
    dht::Key key;
    dht::ProviderRecord record;
    sim::Time visible_at = 0;
  };
  struct VisibleRecord {
    dht::ProviderRecord record;
    sim::Time expires_at = 0;
  };

  void on_advertise(const AdvertiseMessage& ad);
  void answer_query(const QueryRequest& query,
                    const std::function<void(sim::MessagePtr, std::size_t)>&
                        respond);
  // Re-arms the ingest timer for the front of the queue (daemon: an idle
  // indexer must not keep Simulator::run() alive).
  void arm_ingest_timer();
  void ingest_due();

  // Declared first so an owned backend outlives transport_ users.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport& transport_;
  IndexerConfig config_;
  sim::NodeId node_ = sim::kInvalidNode;
  // Arrival-ordered; visible_at is nondecreasing (constant ingest lag),
  // so the front is always the next record due.
  std::deque<PendingAd> pending_;
  std::unordered_map<dht::Key, std::vector<VisibleRecord>, dht::KeyHasher>
      index_;
  transport::Timer ingest_timer_;
  std::uint64_t advertisements_received_ = 0;
  std::uint64_t queries_served_ = 0;
};

}  // namespace ipfs::indexer
