// ipfsd: a minimal IPFS daemon running the full node stack over real UDP
// sockets (transport::SocketTransport) — the same node::IpfsNode code the
// simulator drives, now as one OS process per peer.
//
// A localhost cluster (scripts/daemon_smoke.sh drives a 3-process one):
//
//   ./ipfsd --index 0 --port 9100 --serve-ms 4000 &
//   ./ipfsd --index 1 --port 9101 --peer 0:9100 --bootstrap 0 \
//           --publish "hello interplanetary world" --serve-ms 4000 &
//   ./ipfsd --index 2 --port 9102 --peer 0:9100 --bootstrap 0 \
//           --fetch "hello interplanetary world" --serve-ms 4000
//
// The publisher imports the string, walks the DHT for the closest peers
// and fire-and-forgets provider records; the fetcher derives the same
// root CID locally (content addressing makes the rendezvous implicit),
// resolves a provider through the DHT and pulls the blocks over Bitswap.
// Node identities derive from --index (IpfsNode::derive_keypair), so
// every process can compute every other's PeerId offline; --peer entries
// seed the socket peer table and --bootstrap names which of those to join
// through. --metrics dumps the per-process counter registry as JSONL.
//
// Exit code: 0 when this node's role succeeded (publish ok / fetch ok /
// plain server finished serving), 1 otherwise.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "blockstore/blockstore.h"
#include "dht/messages.h"
#include "merkledag/merkledag.h"
#include "multiformats/multiaddr.h"
#include "multiformats/peerid.h"
#include "node/ipfs_node.h"
#include "transport/socket_transport.h"

namespace {

struct Options {
  std::uint64_t index = 0;
  std::uint16_t port = 0;
  std::vector<std::pair<std::uint64_t, std::uint16_t>> peers;
  std::vector<std::uint64_t> bootstrap;
  std::optional<std::string> publish;
  std::optional<std::string> fetch;
  std::int64_t serve_ms = 5000;
  std::optional<std::string> metrics_path;
  std::optional<std::string> store_dir;
};

// Mirrors the node layer's listen_address_for derivation so the PeerRefs
// this process builds for its neighbours carry the addresses their
// DhtNodes advertise about themselves.
ipfs::multiformats::Multiaddr listen_address_for(std::uint64_t seed) {
  return ipfs::multiformats::make_tcp_multiaddr(
      "10." + std::to_string(seed % 250) + "." +
          std::to_string((seed / 250) % 250) + ".1",
      4001);
}

ipfs::dht::PeerRef ref_for(std::uint64_t index) {
  ipfs::dht::PeerRef ref;
  ref.id = ipfs::multiformats::PeerId::from_public_key(
      ipfs::node::IpfsNode::derive_keypair(index).public_key);
  ref.node = static_cast<ipfs::sim::NodeId>(index);
  ref.addresses = {listen_address_for(index)};
  return ref;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opts;
  auto next = [&](int& i) -> std::optional<std::string> {
    if (i + 1 >= argc) return std::nullopt;
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::optional<std::string> value;
    if (arg == "--index" && (value = next(i))) {
      opts.index = std::stoull(*value);
    } else if (arg == "--port" && (value = next(i))) {
      opts.port = static_cast<std::uint16_t>(std::stoul(*value));
    } else if (arg == "--peer" && (value = next(i))) {
      const auto colon = value->find(':');
      if (colon == std::string::npos) return std::nullopt;
      opts.peers.emplace_back(
          std::stoull(value->substr(0, colon)),
          static_cast<std::uint16_t>(std::stoul(value->substr(colon + 1))));
    } else if (arg == "--bootstrap" && (value = next(i))) {
      opts.bootstrap.push_back(std::stoull(*value));
    } else if (arg == "--publish" && (value = next(i))) {
      opts.publish = *value;
    } else if (arg == "--fetch" && (value = next(i))) {
      opts.fetch = *value;
    } else if (arg == "--serve-ms" && (value = next(i))) {
      opts.serve_ms = std::stoll(*value);
    } else if (arg == "--metrics" && (value = next(i))) {
      opts.metrics_path = *value;
    } else if (arg == "--store-dir" && (value = next(i))) {
      opts.store_dir = *value;
    } else {
      std::cerr << "ipfsd: bad argument " << arg << "\n";
      return std::nullopt;
    }
  }
  return opts;
}

void dump_metrics(const Options& opts, ipfs::metrics::Registry& registry,
                  bool ok) {
  if (!opts.metrics_path.has_value()) return;
  std::ofstream out(*opts.metrics_path);
  out << "{\"event\":\"summary\",\"index\":" << opts.index
      << ",\"role\":\""
      << (opts.publish ? "publisher" : opts.fetch ? "fetcher" : "server")
      << "\",\"ok\":" << (ok ? "true" : "false") << "}\n";
  for (const auto& [name, counter] : registry.counters()) {
    out << "{\"event\":\"counter\",\"index\":" << opts.index << ",\"name\":\""
        << name << "\",\"value\":" << counter.value() << "}\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) {
    std::cerr << "usage: ipfsd --index I --port P [--peer J:PORT]... "
                 "[--bootstrap J]... [--publish S] [--fetch S] "
                 "[--serve-ms MS] [--metrics FILE] [--store-dir DIR]\n";
    return 1;
  }
  const Options& opts = *parsed;

  ipfs::transport::SocketTransport transport(
      static_cast<ipfs::transport::PeerAddr>(opts.index), "127.0.0.1",
      opts.port);
  for (const auto& [peer, port] : opts.peers) {
    transport.add_peer(static_cast<ipfs::transport::PeerAddr>(peer),
                       "127.0.0.1", port);
  }

  ipfs::node::IpfsNodeConfig config;
  config.identity_seed = opts.index;
  if (opts.store_dir.has_value()) {
    // Durable data plane (docs/BLOCKSTORE.md): the log-structured store
    // on real files, behind the write-behind queue. A kill -9 loses at
    // most the unflushed tail; acked publishes survive the restart.
    config.store.backend =
        ipfs::blockstore::StoreConfig::Backend::kPersistentAsync;
    config.store.directory = *opts.store_dir;
  }
  ipfs::node::IpfsNode node(transport, config);
  if (opts.store_dir.has_value()) {
    std::cerr << "ipfsd[" << opts.index << "] restored "
              << node.store().block_count() << " blocks from "
              << *opts.store_dir << "\n";
  }

  const ipfs::sim::Time start = transport.now();
  const ipfs::sim::Time stop = start + ipfs::sim::milliseconds(
                                           static_cast<double>(opts.serve_ms));

  // Every daemon is a DHT server: localhost endpoints are dialable by
  // construction, and AutoNAT's verdict (> 3 reachable probes) can never
  // pass in a cluster this small. Pinning keeps the bootstrap dial-backs
  // from demoting us back to client.
  node.dht().fix_mode(ipfs::dht::DhtNode::Mode::kServer);

  // Join through the bootstrap peers, retrying while they come up (the
  // smoke script launches the cluster concurrently).
  bool joined = opts.bootstrap.empty();
  if (!joined) {
    std::vector<ipfs::dht::PeerRef> seeds;
    for (const std::uint64_t peer : opts.bootstrap) {
      seeds.push_back(ref_for(peer));
    }
    std::function<void()> attempt = [&] {
      node.bootstrap(seeds, [&](bool ok) {
        if (ok) {
          joined = true;
          std::cerr << "ipfsd[" << opts.index << "] joined\n";
          return;
        }
        if (transport.now() < stop) {
          transport.schedule_after(ipfs::sim::milliseconds(250.0),
                                   [&] { attempt(); });
        }
      });
    };
    attempt();
    while (!joined && transport.now() < stop) {
      transport.poll_once(ipfs::sim::milliseconds(5.0));
    }
    if (!joined) {
      std::cerr << "ipfsd[" << opts.index << "] bootstrap failed\n";
      dump_metrics(opts, transport.metrics(), false);
      return 1;
    }
  }

  bool role_ok = !opts.publish.has_value() && !opts.fetch.has_value();

  if (opts.publish.has_value()) {
    const std::span<const std::uint8_t> data(
        reinterpret_cast<const std::uint8_t*>(opts.publish->data()),
        opts.publish->size());
    bool done = false;
    node.publish(data, [&](ipfs::node::PublishTrace trace) {
      done = true;
      role_ok = trace.ok;
      std::cerr << "ipfsd[" << opts.index << "] published "
                << trace.cid.to_string() << " records="
                << trace.provider_records_sent << "\n";
    });
    while (!done && transport.now() < stop) {
      transport.poll_once(ipfs::sim::milliseconds(5.0));
    }
  }

  if (opts.fetch.has_value()) {
    // Derive the root CID the publisher's import produced: same bytes,
    // same chunker, same root — without touching this node's own store.
    ipfs::blockstore::BlockStore scratch;
    const std::span<const std::uint8_t> data(
        reinterpret_cast<const std::uint8_t*>(opts.fetch->data()),
        opts.fetch->size());
    const auto expected = ipfs::merkledag::import_bytes(scratch, data);

    bool done = false;
    std::function<void()> attempt = [&] {
      node.retrieve(expected.root, [&](ipfs::node::RetrievalTrace trace) {
        if (trace.ok) {
          done = true;
          role_ok = true;
          std::cerr << "ipfsd[" << opts.index << "] fetched "
                    << expected.root.to_string() << " bytes=" << trace.bytes
                    << " from=" << trace.provider_node << "\n";
          return;
        }
        // The publisher may not have finished providing yet.
        if (transport.now() < stop) {
          transport.schedule_after(ipfs::sim::milliseconds(400.0),
                                   [&] { attempt(); });
        }
      });
    };
    attempt();
    while (!done && transport.now() < stop) {
      transport.poll_once(ipfs::sim::milliseconds(5.0));
    }
    if (!done) {
      std::cerr << "ipfsd[" << opts.index << "] fetch failed\n";
    }
  }

  // Keep serving until the deadline so other cluster members can finish.
  while (transport.now() < stop) {
    transport.poll_once(ipfs::sim::milliseconds(5.0));
  }

  dump_metrics(opts, transport.metrics(), role_ok);
  std::cerr << "ipfsd[" << opts.index << "] done ok=" << role_ok << "\n";
  return role_ok ? 0 : 1;
}
