// Mutable content with IPNS (paper Section 3.3): a website publishes
// version 1, a reader resolves it through the publisher's permanent
// name, then the site updates to version 2 under the same name.
//
// Build & run:  ./build/examples/mutable_website
#include <cstdio>
#include <string>

#include "ipns/ipns.h"
#include "node/ipfs_node.h"
#include "world/world.h"

using namespace ipfs;

namespace {

std::vector<std::uint8_t> page(const std::string& html) {
  return std::vector<std::uint8_t>(html.begin(), html.end());
}

}  // namespace

int main() {
  world::WorldConfig world_config;
  world_config.population.peer_count = 350;
  world_config.seed = 17;
  world::World world(world_config);

  node::IpfsNodeConfig site_config;
  site_config.net.region = world::kUsWest;
  site_config.identity_seed = 11;
  node::IpfsNode site(world.network(), site_config);

  node::IpfsNodeConfig reader_config;
  reader_config.net.region = world::kEuCentral;
  reader_config.identity_seed = 12;
  node::IpfsNode reader(world.network(), reader_config);

  site.bootstrap(world.bootstrap_refs(), [](bool) {});
  reader.bootstrap(world.bootstrap_refs(), [](bool) {});
  world.simulator().run();

  // The permanent name: the hash of the site's public key.
  const auto site_name = site.self().id;
  std::printf("site name (IPNS): /ipns/%s\n\n", site_name.to_base58().c_str());

  // --- version 1 -------------------------------------------------------------
  const auto v1 = page("<html>My blog, first post!</html>");
  node::PublishTrace publish_v1;
  site.publish(v1, [&](node::PublishTrace t) { publish_v1 = t; });
  world.simulator().run();
  std::printf("v1 content CID: %s\n", publish_v1.cid.to_string().c_str());

  // Bind name -> v1, signed with the site's key (sequence 1).
  ipns::publish(site.dht(), site.keypair(), publish_v1.cid, 1,
                [](bool ok, int replicas) {
                  std::printf("IPNS record v1 published: %s (%d replicas)\n",
                              ok ? "ok" : "FAILED", replicas);
                });
  world.simulator().run();

  // The reader knows only the name.
  ipns::resolve(reader.dht(), site_name,
                [&](std::optional<multiformats::Cid> cid) {
                  std::printf("reader resolved /ipns/... -> %s\n",
                              cid ? cid->to_string().c_str() : "(nothing)");
                });
  world.simulator().run();

  // --- version 2: same name, new content --------------------------------------
  const auto v2 = page("<html>My blog, second post! (now with updates)</html>");
  node::PublishTrace publish_v2;
  site.publish(v2, [&](node::PublishTrace t) { publish_v2 = t; });
  world.simulator().run();
  std::printf("\nv2 content CID: %s\n", publish_v2.cid.to_string().c_str());

  ipns::publish(site.dht(), site.keypair(), publish_v2.cid, 2,
                [](bool ok, int) {
                  std::printf("IPNS record v2 published: %s\n",
                              ok ? "ok" : "FAILED");
                });
  world.simulator().run();

  std::optional<multiformats::Cid> resolved;
  ipns::resolve(reader.dht(), site_name,
                [&](std::optional<multiformats::Cid> cid) { resolved = cid; });
  world.simulator().run();

  if (!resolved) {
    std::printf("resolution failed\n");
    return 1;
  }
  std::printf("reader resolved the SAME name -> %s\n",
              resolved->to_string().c_str());
  std::printf("name now points at v2: %s\n",
              *resolved == publish_v2.cid ? "yes" : "NO");

  // Fetch the current version through the resolved CID.
  node::RetrievalTrace retrieval;
  reader.retrieve(*resolved, [&](node::RetrievalTrace t) { retrieval = t; });
  world.simulator().run();
  if (retrieval.ok) {
    const auto bytes = merkledag::cat(reader.store(), *resolved);
    std::printf("\nfetched current site (%zu bytes): %.50s...\n",
                bytes->size(), reinterpret_cast<const char*>(bytes->data()));
  }

  // Old content remains addressable forever under its own CID — names
  // are mutable, content is immutable.
  return *resolved == publish_v2.cid ? 0 : 1;
}
