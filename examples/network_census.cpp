// Network census (paper Sections 4.1 and 5): run the crawler and the
// uptime prober against a simulated deployment and print the kind of
// census the paper's measurement study reports.
//
// Build & run:  ./build/examples/network_census
#include <cstdio>

#include "crawler/census.h"
#include "crawler/crawler.h"
#include "crawler/uptime_prober.h"
#include "world/world.h"

using namespace ipfs;

int main() {
  world::WorldConfig world_config;
  world_config.population.peer_count = 1200;
  world_config.seed = 29;
  world::World world(world_config);

  // The crawler machine (the paper runs it from a server in Germany).
  sim::NodeConfig crawler_config;
  crawler_config.region = world::kEuCentral;
  crawler_config.upload_bytes_per_sec = 100.0 * 1024 * 1024;
  crawler_config.download_bytes_per_sec = 100.0 * 1024 * 1024;
  const sim::NodeId self = world.network().add_node(crawler_config);

  crawler::Crawler crawler(world.network(), self, world.bootstrap_refs());
  crawler::CrawlResult crawl;
  crawler.crawl([&](crawler::CrawlResult r) { crawl = std::move(r); });
  world.simulator().run();

  std::printf("crawl finished in %.1f s (simulated)\n",
              sim::to_seconds(crawl.finished_at - crawl.started_at));
  std::printf("  peers discovered:  %zu\n", crawl.total());
  std::printf("  dialable now:      %zu (%.1f%%)\n", crawl.dialable(),
              100.0 * static_cast<double>(crawl.dialable()) /
                  static_cast<double>(crawl.total()));
  std::printf("  unique IPs:        %zu\n", crawl.unique_ip_count());
  std::printf("  multiaddresses:    %zu\n\n", crawl.multiaddress_count());

  std::printf("top countries (GeoIP over crawled addresses):\n");
  int rows = 0;
  for (const auto& share :
       crawler::country_distribution(crawl, world.geodb())) {
    std::printf("  %-8s %6zu peers  (%.1f%%)\n", share.code.c_str(),
                share.count, share.share * 100.0);
    if (++rows >= 6) break;
  }

  std::printf("\ntop autonomous systems:\n");
  rows = 0;
  for (const auto& entry : crawler::as_distribution(crawl, world.geodb())) {
    std::printf("  AS%-7u %-30s %5zu IPs (%.1f%%)\n", entry.asn,
                entry.name.c_str(), entry.ip_count, entry.share * 100.0);
    if (++rows >= 5) break;
  }

  // A short probing window for churn statistics.
  crawler::UptimeProber prober(world.network(), self);
  for (const auto& obs : crawl.observations) prober.track(obs.peer);
  const sim::Time window_start = world.simulator().now();
  world.simulator().run_until(window_start + sim::hours(3));
  prober.finish();

  std::vector<double> session_hours;
  for (const auto& [country, sessions] : crawler::session_lengths_by_country(
           prober.sessions(), world.geodb(), window_start,
           world.simulator().now())) {
    session_hours.insert(session_hours.end(), sessions.begin(),
                         sessions.end());
  }
  if (!session_hours.empty()) {
    std::sort(session_hours.begin(), session_hours.end());
    std::printf("\nchurn (3 h probing window): %zu sessions, median %.0f min\n",
                session_hours.size(),
                session_hours[session_hours.size() / 2] * 60.0);
  }
  std::printf("\nthis is the same tooling the deployment benches\n"
              "(bench_fig04a/05/07/08, bench_tab2/3) are built on.\n");
  return 0;
}
