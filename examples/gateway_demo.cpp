// Gateway demo (paper Section 3.4): HTTP clients fetch IPFS content
// through a gateway without running IPFS themselves. Shows the three
// serving tiers and the effect of caching on latency.
//
// Build & run:  ./build/examples/gateway_demo
#include <cstdio>

#include "gateway/gateway.h"
#include "world/world.h"

using namespace ipfs;

namespace {

const char* tier_name(gateway::ServedFrom source) {
  switch (source) {
    case gateway::ServedFrom::kNginxCache:
      return "nginx cache";
    case gateway::ServedFrom::kNodeStore:
      return "node store ";
    case gateway::ServedFrom::kP2p:
      return "p2p network";
    case gateway::ServedFrom::kFailed:
      return "FAILED     ";
  }
  return "?";
}

std::vector<std::uint8_t> make_object(std::size_t size, std::uint8_t tag) {
  std::vector<std::uint8_t> out(size, tag);
  return out;
}

}  // namespace

int main() {
  world::WorldConfig world_config;
  world_config.population.peer_count = 350;
  world_config.seed = 23;
  world::World world(world_config);

  // The gateway bridges HTTP and the P2P network.
  gateway::GatewayConfig config;
  config.node.net.region = world::kUsEast;
  config.node.identity_seed = 31;
  config.node.provide_after_fetch = false;
  config.nginx_cache_bytes = 4 * 1024 * 1024;
  gateway::Gateway gateway(world.network(), config);

  // A regular peer somewhere in Asia hosts some content.
  node::IpfsNodeConfig host_config;
  host_config.net.region = world::kAsiaEast;
  host_config.identity_seed = 32;
  node::IpfsNode host(world.network(), host_config);

  gateway.bootstrap(world.bootstrap_refs(), [](bool) {});
  host.bootstrap(world.bootstrap_refs(), [](bool) {});
  world.simulator().run();

  // Pinned content: uploaded through the Web3/NFT Storage initiatives,
  // persistently available from the gateway's own node store.
  const auto pinned = make_object(300 * 1024, 0x11);
  gateway.pin_object(pinned);
  const auto pinned_cid =
      merkledag::import_bytes(host.store(), pinned).root;  // same CID

  // Remote content: published by the Asian host, only reachable via P2P.
  const auto remote = make_object(512 * 1024, 0x22);
  node::PublishTrace publish_trace;
  host.publish(remote, [&](node::PublishTrace t) { publish_trace = t; });
  world.simulator().run();

  std::printf("pinned CID: %s\n", pinned_cid.to_string().c_str());
  std::printf("remote CID: %s\n\n", publish_trace.cid.to_string().c_str());

  // Simulated browser requests: GET /ipfs/{cid}.
  struct Request {
    const char* label;
    multiformats::Cid cid;
  };
  const Request requests[] = {
      {"GET pinned   (first)", pinned_cid},
      {"GET pinned   (again)", pinned_cid},
      {"GET remote   (first)", publish_trace.cid},
      {"GET remote   (again)", publish_trace.cid},
      {"GET remote   (third)", publish_trace.cid},
  };

  for (const auto& request : requests) {
    gateway::GatewayResponse response;
    gateway.handle_get(request.cid, [&](gateway::GatewayResponse r) {
      response = r;
    });
    world.simulator().run();
    std::printf("%s  ->  %s  %8.1f ms  %7llu bytes\n", request.label,
                tier_name(response.source),
                sim::to_millis(response.latency),
                static_cast<unsigned long long>(response.bytes));
  }

  std::printf("\ntier totals: nginx=%llu node-store=%llu p2p=%llu\n",
              static_cast<unsigned long long>(
                  gateway.stats(gateway::ServedFrom::kNginxCache).requests),
              static_cast<unsigned long long>(
                  gateway.stats(gateway::ServedFrom::kNodeStore).requests),
              static_cast<unsigned long long>(
                  gateway.stats(gateway::ServedFrom::kP2p).requests));
  std::printf("\nnote how the first remote GET pays seconds (Bitswap window "
              "+ DHT walks +\nfetch) while repeats are served from the nginx "
              "cache in sub-millisecond\ntime — the effect behind Table 5.\n");
  return 0;
}
