// Quickstart: the smallest end-to-end IPFS flow.
//
//   1. build a simulated swarm (the stand-in for the public network),
//   2. start two IPFS nodes and bootstrap them,
//   3. add a file on one node -> content-addressed CID,
//   4. retrieve it by CID on the other node via DHT + Bitswap.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "node/ipfs_node.h"
#include "world/world.h"

using namespace ipfs;

int main() {
  // A 400-peer world with churn, NATs and realistic latencies.
  world::WorldConfig world_config;
  world_config.population.peer_count = 400;
  world_config.seed = 7;
  world::World world(world_config);
  std::printf("world: %zu peers, %zu bootstrap nodes\n", world.size(),
              world.bootstrap_refs().size());

  // Two full IPFS nodes: a publisher in Europe, a retriever in Australia.
  node::IpfsNodeConfig publisher_config;
  publisher_config.net.region = world::kEuCentral;
  publisher_config.conn_manager = {.low_water = 8, .high_water = 24};
  publisher_config.identity_seed = 1;
  node::IpfsNode publisher(world.network(), publisher_config);

  node::IpfsNodeConfig retriever_config;
  retriever_config.net.region = world::kApSoutheast;
  retriever_config.identity_seed = 2;
  node::IpfsNode retriever(world.network(), retriever_config);

  publisher.bootstrap(world.bootstrap_refs(), [](bool ok) {
    std::printf("publisher bootstrapped (server mode: %s)\n",
                ok ? "yes" : "no");
  });
  retriever.bootstrap(world.bootstrap_refs(), [](bool) {});
  world.simulator().run();

  std::printf("publisher PeerID: %s\n", publisher.self().id.to_base58().c_str());
  std::printf("retriever PeerID: %s\n", retriever.self().id.to_base58().c_str());

  // Add half a megabyte of content. Chunking, hashing and Merkle-DAG
  // construction happen locally; publication pushes provider records to
  // the 20 closest DHT servers.
  const std::string text = "Hello from the InterPlanetary File System!";
  std::vector<std::uint8_t> content(512 * 1024, 0);
  std::copy(text.begin(), text.end(), content.begin());

  node::PublishTrace publish_trace;
  publisher.publish(content, [&](node::PublishTrace trace) {
    publish_trace = trace;
  });
  world.simulator().run();

  std::printf("\npublished CID: %s\n", publish_trace.cid.to_string().c_str());
  std::printf("  DHT walk:   %.2f s\n", sim::to_seconds(publish_trace.walk));
  std::printf("  RPC batch:  %.2f s (%d provider records stored)\n",
              sim::to_seconds(publish_trace.rpc_batch),
              publish_trace.provider_records_sent);

  // Retrieve by CID. The retriever knows nothing but the CID: Bitswap
  // probes its neighbours, then the DHT resolves providers and addresses.
  node::RetrievalTrace retrieval;
  retriever.retrieve(publish_trace.cid, [&](node::RetrievalTrace trace) {
    retrieval = trace;
  });
  world.simulator().run();

  if (!retrieval.ok) {
    std::printf("retrieval failed!\n");
    return 1;
  }
  std::printf("\nretrieved %llu bytes in %.2f s\n",
              static_cast<unsigned long long>(retrieval.bytes),
              sim::to_seconds(retrieval.total));
  std::printf("  bitswap probe: %.2f s (%s)\n",
              sim::to_seconds(retrieval.bitswap_discovery),
              retrieval.bitswap_hit ? "hit" : "miss -> DHT");
  std::printf("  provider walk: %.2f s\n",
              sim::to_seconds(retrieval.provider_walk));
  std::printf("  peer walk:     %.2f s\n", sim::to_seconds(retrieval.peer_walk));
  std::printf("  dial+fetch:    %.2f s\n",
              sim::to_seconds(retrieval.dial + retrieval.negotiate +
                              retrieval.fetch));
  std::printf("  stretch vs HTTPS: %.2f\n", retrieval.stretch());

  // Verify the content round-tripped bit-for-bit.
  const auto fetched = merkledag::cat(retriever.store(), publish_trace.cid);
  const bool identical = fetched.has_value() && *fetched == content;
  std::printf("\ncontent verified: %s\n", identical ? "OK" : "MISMATCH");
  return identical ? 0 : 1;
}
